// Symmetry audit: mechanically verifies that a declared automorphism group
// (check/canon.hpp) satisfies the soundness obligations the quotient
// checker relies on, on the concrete probe states at hand:
//
//   (order)        g^m(s) = s — the generator really has the declared order;
//   (equivariance) enabled(a, s) = enabled(perm(a), g(s)) and
//                  g(apply(a, s)) = apply(perm(a), g(s)) for every action;
//   (invariance)   safe(s) <=> safe(g(s)) and legit(s) <=> legit(g(s)).
//
// These are exactly conditions (1)-(2) of canon.hpp, checked by enumeration
// instead of by hand. A state-level counterexample is definitive: quotient
// exploration with this group would merge states with different futures
// (the rooted-ring process-rotation bug was precisely such a violation —
// rotating a root start state yields a state where the root's control value
// is held by a non-root process, flipping T1's enabledness). Passing is, as
// everywhere in the auditor, only as strong as the probe set.
//
// Findings are deduplicated per (check, action): one witness state per
// broken obligation is a report, a thousand is noise.
#pragma once

#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "audit/lints.hpp"
#include "check/canon.hpp"
#include "sim/action.hpp"

namespace ftbar::audit {

template <class P>
void audit_symmetry(
    const std::vector<sim::Action<P>>& actions, std::size_t procs,
    const check::Symmetry<P>& sym,
    const std::vector<std::vector<P>>& probe_states,
    const std::function<bool(const std::vector<P>&)>& safe,
    const std::function<bool(const std::vector<P>&)>& legit,
    std::vector<Finding>& out) {
  if (sym.trivial()) return;
  const auto perm = [&](std::size_t a) {
    return sym.action_perm.empty() ? a
                                   : static_cast<std::size_t>(sym.action_perm[a]);
  };
  if (!sym.action_perm.empty() && sym.action_perm.size() != actions.size()) {
    out.push_back({"symmetry", Severity::kError, "(group)", -1,
                   "action_perm has " + std::to_string(sym.action_perm.size()) +
                       " entries for " + std::to_string(actions.size()) +
                       " actions"});
    return;
  }

  std::unordered_set<std::string> reported;
  auto report = [&](const std::string& key, const std::string& action,
                    std::string message) {
    if (reported.insert(key).second) {
      out.push_back(
          {"symmetry", Severity::kError, action, -1, std::move(message)});
    }
  };

  std::vector<P> gs, lhs, rhs;
  for (const auto& s : probe_states) {
    if (s.size() != procs) continue;
    // (order): applying the generator `order` times must be the identity.
    gs = s;
    for (std::size_t k = 0; k < sym.order; ++k) sym.generator(std::span<P>{gs});
    if (!(gs == s)) {
      report("order", "(group)",
             "generator '" + sym.name + "' does not have order " +
                 std::to_string(sym.order) + ": g^" +
                 std::to_string(sym.order) + "(s) != s on a probe state");
    }
    gs = s;
    sym.generator(std::span<P>{gs});
    // (invariance): the predicates the quotient checker evaluates must not
    // distinguish orbit members.
    if (safe && safe(s) != safe(gs)) {
      report("safe", "(group)",
             "safe(s) != safe(g(s)) — the invariant is not '" + sym.name +
                 "'-invariant, so quotient checking may miss violations");
    }
    if (legit && legit(s) != legit(gs)) {
      report("legit", "(group)",
             "legit(s) != legit(g(s)) — the legitimacy predicate is not '" +
                 sym.name + "'-invariant");
    }
    // (equivariance), per action.
    for (std::size_t a = 0; a < actions.size(); ++a) {
      const std::size_t pa = perm(a);
      const bool en = actions[a].guard(s);
      if (en != actions[pa].guard(gs)) {
        report("enabled:" + actions[a].name, actions[a].name,
               "enabled(" + actions[a].name + ", s) != enabled(" +
                   actions[pa].name + ", g(s)) under '" + sym.name +
                   "' — the group does not commute with the transition "
                   "relation");
        continue;
      }
      if (!en) continue;
      lhs = s;
      actions[a].apply(lhs);
      sym.generator(std::span<P>{lhs});  // g(apply(a, s))
      rhs = gs;
      actions[pa].apply(rhs);  // apply(perm(a), g(s))
      if (!(lhs == rhs)) {
        report("commute:" + actions[a].name, actions[a].name,
               "g(apply(" + actions[a].name + ", s)) != apply(" +
                   actions[pa].name + ", g(s)) under '" + sym.name +
                   "' — successors computed in the quotient are wrong");
      }
    }
  }
}

}  // namespace ftbar::audit
