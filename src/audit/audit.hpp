// audit_bundle: the contract auditor's top-level orchestration over one
// checking bundle — harvest probe states (the bundle's perturbed root set
// plus deterministic random walks), infer every action's effects by
// differential probing over the bundle's record domain, then run the lint
// battery and the symmetry audit. Pure function of (bundle, config): the
// resulting ProgramAudit renders to byte-identical reports across runs.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "audit/effects.hpp"
#include "audit/lints.hpp"
#include "audit/report.hpp"
#include "audit/symmetry.hpp"
#include "check/programs.hpp"

namespace ftbar::audit {

struct AuditConfig {
  std::string program = "program";  ///< label for the report
  GranularityRule granularity;      ///< defaults to kCoarse (no constraint)
  std::string granularity_name = "coarse";
  bool check_symmetry = true;
  /// Probe-state harvest: walks per perturbed root and their depth, capped
  /// at max_probe_states distinct states. The perturbed root set is already
  /// |record domain| * procs states, so a couple of walks per root covers
  /// plenty of mid-execution structure.
  std::size_t walks_per_root = 2;
  std::size_t walk_depth = 24;
  std::size_t max_probe_states = 4096;
  EffectOptions effects;  ///< variant sampling, determinism reps, seed
};

/// `extra_probe_roots` supplements the bundle's perturbed root set with
/// states its single-corruption reduction cannot reach but the fault model
/// can (repeated faults) — e.g. the mid-recovery BOT/TOP wave states of
/// presets.hpp, without which a multi-child T4 guard is never witnessed.
template <class P>
[[nodiscard]] ProgramAudit audit_bundle(
    const check::ProgramBundle<P>& bundle, const AuditConfig& cfg,
    const std::vector<std::vector<P>>& extra_probe_roots = {}) {
  ProgramAudit audit;
  audit.program = cfg.program;
  audit.procs = bundle.procs;
  audit.granularity = cfg.granularity_name;

  auto roots = bundle.perturbed_roots;
  roots.insert(roots.end(), extra_probe_roots.begin(), extra_probe_roots.end());
  const auto probe_states =
      collect_probe_states(bundle.actions, roots, cfg.walks_per_root,
                           cfg.walk_depth, cfg.effects.seed,
                           cfg.max_probe_states);
  audit.probe_states = probe_states.size();

  const auto fx = infer_effects(bundle.actions, bundle.procs, probe_states,
                                bundle.record_domain, cfg.effects);

  audit.actions.reserve(bundle.actions.size());
  for (std::size_t i = 0; i < bundle.actions.size(); ++i) {
    const auto& a = bundle.actions[i];
    ActionSummary s;
    s.name = a.name;
    s.process = a.process;
    s.has_declared_reads = a.has_read_set();
    if (s.has_declared_reads) s.declared_reads = a.reads;
    s.guard_reads = fx[i].guard_reads;
    s.stmt_reads = fx[i].stmt_reads;
    s.writes = fx[i].writes;
    s.probes = fx[i].guard_probes + fx[i].stmt_probes;
    audit.variant_probes += s.probes;
    audit.actions.push_back(std::move(s));
  }

  lint_read_sets(bundle.actions, fx, audit.findings);
  lint_write_locality(bundle.actions, fx, audit.findings);
  lint_determinism(bundle.actions, fx, audit.findings);
  lint_granularity(bundle.actions, fx, cfg.granularity, audit.findings);
  if (cfg.check_symmetry && !bundle.symmetry.trivial()) {
    audit.symmetry = bundle.symmetry.name;
    audit_symmetry(bundle.actions, bundle.procs, bundle.symmetry, probe_states,
                   bundle.safe, bundle.legit, audit.findings);
  }
  sort_findings(audit.findings);
  return audit;
}

}  // namespace ftbar::audit
