// Deliberate contract breakage for the auditor's self-tests: each mutation
// plants one specific violation in a healthy bundle, and the tests assert
// the auditor flags exactly that action. A linter that has never been seen
// to fail is not evidence of anything.
//
//   under-declare    — drop the last slot from the first multi-slot declared
//                      read-set (RB: drops T1@0's leaf / T2's parent) =>
//                      read-set-soundness must fire.
//   over-declare     — add the smallest unread slot to the first declared
//                      read-set that misses one => read-set-tightness (a
//                      warning: callers use --strict to make it fatal).
//   foreign-write    — wrap the first action's statement to also overwrite
//                      a non-owner slot (first domain record that differs)
//                      => write-locality must fire; this is the same bug the
//                      StepEngine debug assert traps live.
//   bad-automorphism — replace the declared symmetry with the PROCESS
//                      rotation, the historically tempting unsound group for
//                      rooted programs (canon.hpp) => symmetry equivariance
//                      must fire.
//   mb-xor           — make the first action's guard observably depend on a
//                      distance-2 slot and declare that read honestly =>
//                      only the granularity lint (MB: mb-read-xor-write)
//                      fires, isolating it from soundness. Needs procs >= 4
//                      so distance 2 is not also a ring neighbour.
//   nondeterminism   — give the first action's guard a hidden toggle =>
//                      determinism must fire.
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "check/programs.hpp"

namespace ftbar::audit {

enum class Mutation {
  kUnderDeclare,
  kOverDeclare,
  kForeignWrite,
  kBadAutomorphism,
  kMbXor,
  kNondeterminism,
};

[[nodiscard]] inline std::optional<Mutation> parse_mutation(
    const std::string& name) {
  if (name == "under-declare") return Mutation::kUnderDeclare;
  if (name == "over-declare") return Mutation::kOverDeclare;
  if (name == "foreign-write") return Mutation::kForeignWrite;
  if (name == "bad-automorphism") return Mutation::kBadAutomorphism;
  if (name == "mb-xor") return Mutation::kMbXor;
  if (name == "nondeterminism") return Mutation::kNondeterminism;
  return std::nullopt;
}

[[nodiscard]] inline const char* mutation_name(Mutation m) {
  switch (m) {
    case Mutation::kUnderDeclare: return "under-declare";
    case Mutation::kOverDeclare: return "over-declare";
    case Mutation::kForeignWrite: return "foreign-write";
    case Mutation::kBadAutomorphism: return "bad-automorphism";
    case Mutation::kMbXor: return "mb-xor";
    case Mutation::kNondeterminism: return "nondeterminism";
  }
  return "?";
}

/// Plants `m` in the bundle and returns the name of the action (or
/// "(group)" for the symmetry mutation) the auditor is expected to name;
/// empty string if the bundle has no suitable target (caller should treat
/// that as a test setup error).
template <class P>
[[nodiscard]] std::string apply_mutation(check::ProgramBundle<P>& b,
                                         Mutation m) {
  switch (m) {
    case Mutation::kUnderDeclare:
      for (auto& a : b.actions) {
        if (a.reads.size() >= 2) {
          a.reads.pop_back();
          return a.name;
        }
      }
      return "";
    case Mutation::kOverDeclare:
      for (auto& a : b.actions) {
        if (!a.has_read_set()) continue;
        for (int slot = 0; slot < static_cast<int>(b.procs); ++slot) {
          if (std::find(a.reads.begin(), a.reads.end(), slot) ==
              a.reads.end()) {
            a.reads.push_back(slot);
            return a.name;
          }
        }
      }
      return "";
    case Mutation::kForeignWrite: {
      if (b.actions.empty() || b.procs < 2 || !b.record_domain) return "";
      auto& a = b.actions.front();
      const auto victim =
          static_cast<std::size_t>(a.process + 1) % b.procs;
      a.apply = [inner = std::move(a.apply), domain = b.record_domain,
                 victim](std::vector<P>& s) {
        inner(s);
        // Overwrite the victim with the first domain record that actually
        // differs from its current value, so the write is observable.
        bool done = false;
        domain(victim, s[victim], [&](const P& v) {
          if (!done && !(v == s[victim])) {
            s[victim] = v;
            done = true;
          }
        });
      };
      return a.name;
    }
    case Mutation::kBadAutomorphism: {
      // The rooted-ring trap: rotating PROCESSES looks like a symmetry of
      // the ring but moves the root's special control state onto a
      // follower, so it does not commute with the transition relation.
      b.symmetry.order = b.procs;
      b.symmetry.name = "process-rotation";
      b.symmetry.action_perm.clear();  // claims g commutes with each action
      b.symmetry.generator = [](std::span<P> s) {
        if (!s.empty()) std::rotate(s.begin(), s.begin() + 1, s.end());
      };
      return "(group)";
    }
    case Mutation::kMbXor: {
      if (b.actions.empty() || b.procs < 4 || b.start_roots.empty()) return "";
      auto& a = b.actions.front();
      const auto far = static_cast<std::size_t>(a.process + 2) % b.procs;
      // Honest declaration (no soundness finding) of a genuinely observable
      // distance-2 dependence: guard XOR "slot far left its start record".
      if (a.has_read_set()) a.reads.push_back(static_cast<int>(far));
      a.guard = [inner = std::move(a.guard), far,
                 ref = b.start_roots.front()[far]](const std::vector<P>& s) {
        return inner(s) != !(s[far] == ref);
      };
      return a.name;
    }
    case Mutation::kNondeterminism: {
      if (b.actions.empty()) return "";
      auto& a = b.actions.front();
      a.guard = [inner = std::move(a.guard),
                 flip = std::make_shared<bool>(false)](const std::vector<P>& s) {
        *flip = !*flip;
        return *flip ? inner(s) : !inner(s);
      };
      return a.name;
    }
  }
  return "";
}

}  // namespace ftbar::audit
