// Effect inference for guarded-command actions — the measurement half of
// the contract auditor (the lint half lives in audit/lints.hpp).
//
// Three performance-critical consumers trust hand-written action metadata:
// the incremental enabled-set maintenance in sim::StepEngine and
// check::SuccessorGen trusts each declared `Action::reads`, the copy-free
// max-parallel merge trusts the "statements write only slot `process`"
// convention, and the symmetry-reduced checker trusts declared
// automorphisms. None of those contracts is visible in the types — guards
// and statements are opaque std::function closures — so this header infers
// them experimentally by DIFFERENTIAL PROBING:
//
//   for every probe state s, slot p and alternative record v of the slot's
//   domain, compare the action's behaviour on s against its behaviour on
//   s[p := v]. A guard value that differs witnesses a guard read of p; a
//   post-state slot q != p whose value differs witnesses a statement read
//   of p; a post-state slot that differs from its input witnesses a write.
//
// The inferred sets are UNDER-approximations of the true semantic effect
// sets (a dependence that no probe exercises is not observed), which fixes
// the lint polarity: an inferred read OUTSIDE the declaration is a definite
// contract violation, while a declared-but-never-observed read is only a
// tightness warning. Probe quality therefore matters; callers feed the
// checker bundles' perturbed root sets plus deterministic random-walk
// states (collect_probe_states), and per-slot alternatives come from the
// bundle's record domain — exhaustively for small domains, fuzz-sampled
// (seeded) for large ones via EffectOptions::max_variants_per_slot.
//
// Requirements on P: copyable and equality-comparable. Statements may be
// probed from any state whose guard holds — monitor side channels
// (SpecMonitor et al.) must be detached (bundles are built monitor-free).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "sim/action.hpp"
#include "trace/digest.hpp"
#include "util/rng.hpp"

namespace ftbar::audit {

/// Enumerates the domain of alternatives for one process record: invoked as
/// domain(j, base, emit), it emits every record the auditor may substitute
/// for slot j whose current value is `base`. Emitting `base` itself is
/// harmless (self-variants are skipped). For combinatorially heavy records
/// a reduced enumeration (e.g. single-field sweeps around `base`, the same
/// reduction MB's perturbed roots use) is acceptable — inference is an
/// under-approximation by design.
template <class P>
using RecordDomain = std::function<void(
    std::size_t, const P&, const std::function<void(const P&)>&)>;

/// What differential probing observed about one action.
struct ActionEffects {
  std::vector<int> guard_reads;  ///< slots the guard observably depends on
  std::vector<int> stmt_reads;   ///< slots a written value observably depends on
  std::vector<int> writes;       ///< slots the statement observably wrote
  bool guard_deterministic = true;  ///< same state -> same guard value, always
  bool stmt_deterministic = true;   ///< same state -> same post-state, always
  std::size_t guard_probes = 0;  ///< guard closure invocations charged to this action
  std::size_t stmt_probes = 0;   ///< statement closure invocations
};

struct EffectOptions {
  /// Per-(state, slot) cap on domain alternatives: 0 = exhaustive, else a
  /// seeded uniform sample of this many (fuzz mode for large domains).
  std::size_t max_variants_per_slot = 0;
  /// Extra same-state re-evaluations hunting nondeterminism / hidden state.
  std::size_t determinism_reps = 2;
  std::uint64_t seed = 1;
};

/// Deterministic probe-state harvesting: interleaved random walks through
/// the action system from each root (weakly-fair uniform choice, the live
/// engine's scheduler), deduplicated by state digest. Returns the roots
/// plus every distinct state the walks visit, capped at `max_states`.
/// Implemented standalone (not via sim::StepEngine) so harvesting works
/// unchanged on deliberately contract-violating action systems — the
/// mutation self-tests feed those in on purpose.
template <class P>
[[nodiscard]] std::vector<std::vector<P>> collect_probe_states(
    const std::vector<sim::Action<P>>& actions,
    const std::vector<std::vector<P>>& roots, std::size_t walks_per_root,
    std::size_t depth, std::uint64_t seed, std::size_t max_states) {
  std::vector<std::vector<P>> out;
  std::unordered_set<std::uint64_t> seen;
  auto keep = [&](const std::vector<P>& s) {
    if (out.size() >= max_states) return false;
    if (seen.insert(trace::state_digest(s)).second) out.push_back(s);
    return out.size() < max_states;
  };
  for (const auto& root : roots) {
    if (!keep(root)) return out;
  }
  util::Rng rng(seed);
  std::vector<std::size_t> enabled;
  for (const auto& root : roots) {
    for (std::size_t w = 0; w < walks_per_root; ++w) {
      std::vector<P> s = root;
      for (std::size_t d = 0; d < depth; ++d) {
        enabled.clear();
        for (std::size_t i = 0; i < actions.size(); ++i) {
          if (actions[i].guard(s)) enabled.push_back(i);
        }
        if (enabled.empty()) break;
        actions[enabled[rng.uniform(enabled.size())]].apply(s);
        if (!keep(s)) return out;
      }
    }
  }
  return out;
}

namespace detail {

inline std::vector<int> flags_to_slots(const std::vector<char>& flags) {
  std::vector<int> out;
  for (std::size_t p = 0; p < flags.size(); ++p) {
    if (flags[p]) out.push_back(static_cast<int>(p));
  }
  return out;
}

}  // namespace detail

/// Runs differential probing of every action over `probe_states`,
/// substituting per-slot alternatives drawn from `domain`. Deterministic
/// for a fixed (actions, probe_states, domain, options) tuple — byte-equal
/// reports across runs with the same seed are a tested property.
template <class P>
[[nodiscard]] std::vector<ActionEffects> infer_effects(
    const std::vector<sim::Action<P>>& actions, std::size_t procs,
    const std::vector<std::vector<P>>& probe_states,
    const RecordDomain<P>& domain, const EffectOptions& opt = {}) {
  const std::size_t num_actions = actions.size();
  std::vector<ActionEffects> fx(num_actions);
  std::vector<std::vector<char>> guard_reads(num_actions,
                                             std::vector<char>(procs, 0));
  std::vector<std::vector<char>> stmt_reads(num_actions,
                                            std::vector<char>(procs, 0));
  std::vector<std::vector<char>> writes(num_actions, std::vector<char>(procs, 0));

  util::Rng rng(opt.seed);
  std::vector<char> g0(num_actions, 0);
  std::vector<std::vector<P>> post0(num_actions);
  std::vector<P> variants;        // per-(state, slot) domain scratch
  std::vector<P> probe, post1;    // perturbed state / post-state scratch

  auto observe_writes = [&](std::size_t i, const std::vector<P>& pre,
                            const std::vector<P>& post) {
    for (std::size_t q = 0; q < procs; ++q) {
      if (!(post[q] == pre[q])) writes[i][q] = 1;
    }
  };

  for (const auto& s : probe_states) {
    if (s.size() != procs) continue;  // defensive: foreign-sized probe state
    // Baseline pass: guard values, post-states, determinism re-checks.
    for (std::size_t i = 0; i < num_actions; ++i) {
      g0[i] = actions[i].guard(s) ? 1 : 0;
      ++fx[i].guard_probes;
      for (std::size_t r = 0; r < opt.determinism_reps; ++r) {
        ++fx[i].guard_probes;
        if ((actions[i].guard(s) ? 1 : 0) != g0[i]) fx[i].guard_deterministic = false;
      }
      if (g0[i] != 0) {
        post0[i] = s;
        actions[i].apply(post0[i]);
        ++fx[i].stmt_probes;
        observe_writes(i, s, post0[i]);
        for (std::size_t r = 0; r < opt.determinism_reps; ++r) {
          post1 = s;
          actions[i].apply(post1);
          ++fx[i].stmt_probes;
          if (!(post1 == post0[i])) fx[i].stmt_deterministic = false;
        }
      }
    }
    // Differential pass: one perturbed slot at a time.
    for (std::size_t p = 0; p < procs; ++p) {
      variants.clear();
      domain(p, s[p], [&](const P& v) { variants.push_back(v); });
      if (opt.max_variants_per_slot != 0 &&
          variants.size() > opt.max_variants_per_slot) {
        // Seeded partial Fisher-Yates: the first k entries become a uniform
        // sample, order-deterministic for a fixed seed.
        for (std::size_t k = 0; k < opt.max_variants_per_slot; ++k) {
          const auto j = k + rng.uniform(variants.size() - k);
          std::swap(variants[k], variants[j]);
        }
        variants.resize(opt.max_variants_per_slot);
      }
      for (const P& v : variants) {
        if (v == s[p]) continue;  // self-variant: no differential signal
        probe = s;
        probe[p] = v;
        for (std::size_t i = 0; i < num_actions; ++i) {
          const char g1 = actions[i].guard(probe) ? 1 : 0;
          ++fx[i].guard_probes;
          if (g1 != g0[i]) guard_reads[i][p] = 1;
          if (g1 == 0) continue;
          post1 = probe;
          actions[i].apply(post1);
          ++fx[i].stmt_probes;
          observe_writes(i, probe, post1);
          if (g0[i] == 0) continue;  // no baseline post-state to compare with
          // A written value at q != p that differs between the runs can
          // only come from the statement reading slot p (the inputs agree
          // everywhere but p).
          for (std::size_t q = 0; q < procs; ++q) {
            if (q != p && !(post1[q] == post0[i][q])) {
              stmt_reads[i][p] = 1;
              break;
            }
          }
        }
      }
    }
    // Late same-state re-evaluation: a guard with hidden mutable state that
    // drifted during the differential pass is caught here.
    for (std::size_t i = 0; i < num_actions; ++i) {
      ++fx[i].guard_probes;
      if ((actions[i].guard(s) ? 1 : 0) != g0[i]) fx[i].guard_deterministic = false;
    }
  }

  for (std::size_t i = 0; i < num_actions; ++i) {
    fx[i].guard_reads = detail::flags_to_slots(guard_reads[i]);
    fx[i].stmt_reads = detail::flags_to_slots(stmt_reads[i]);
    fx[i].writes = detail::flags_to_slots(writes[i]);
  }
  return fx;
}

/// A domain-oblivious RecordDomain for generic validation (the
/// FTBAR_AUDIT_DEBUG construction-time hook, where no bundle domain is
/// available): substitutes the records observed at OTHER slots of the
/// sample pool, plus every single-byte increment of the base record.
/// Byte increments can fabricate values outside a field's semantic domain
/// (e.g. an out-of-range enumerator); guards only compare and copy such
/// values, so this is safe for the repo's programs, but domain-aware
/// auditing via the bundle's own domain is strictly better.
template <class P>
[[nodiscard]] RecordDomain<P> generic_record_domain(std::vector<P> pool) {
  return [pool = std::move(pool)](std::size_t, const P& base,
                                  const std::function<void(const P&)>& emit) {
    for (const P& r : pool) {
      if (!(r == base)) emit(r);
    }
    for (std::size_t off = 0; off < sizeof(P); ++off) {
      P v = base;
      // Canonical byte poke; P is required to be trivially copyable by the
      // record/replay layer's raw-byte digesting, so this is well-defined.
      auto* bytes = reinterpret_cast<unsigned char*>(&v);
      bytes[off] = static_cast<unsigned char>(bytes[off] + 1);
      emit(v);
    }
  };
}

}  // namespace ftbar::audit
