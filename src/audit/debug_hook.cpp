#include "audit/debug_hook.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ftbar::audit {

namespace detail {

int& audit_suspend_depth() noexcept {
  static thread_local int depth = 0;
  return depth;
}

}  // namespace detail

bool debug_audit_enabled() {
  static const bool enabled = [] {
    const char* v = std::getenv("FTBAR_AUDIT_DEBUG");
    return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
  }();
  return enabled && detail::audit_suspend_depth() == 0;
}

void debug_fail(const std::vector<Finding>& findings, const char* site) {
  bool fatal = false;
  for (const auto& f : findings) {
    fatal = fatal || f.severity == Severity::kError;
    std::fprintf(stderr, "[%s] FTBAR_AUDIT_DEBUG %s: %s action '%s'%s: %s\n",
                 site, f.severity == Severity::kError ? "error" : "warning",
                 f.lint.c_str(), f.action.c_str(),
                 f.slot >= 0 ? (" slot " + std::to_string(f.slot)).c_str() : "",
                 f.message.c_str());
  }
  if (fatal) {
    std::fprintf(stderr,
                 "[%s] FTBAR_AUDIT_DEBUG: aborting on contract violation "
                 "(unset FTBAR_AUDIT_DEBUG to skip construction-time "
                 "auditing)\n",
                 site);
    std::abort();
  }
}

}  // namespace ftbar::audit
