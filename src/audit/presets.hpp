// Per-program audit presets: the granularity rule each paper program class
// is held to, derived from the same topology its bundle was built over.
//
//   cb  — coarse-grain (§3): any guard may read the whole state. No
//         footprint constraint; only soundness/locality/determinism apply.
//   rb  — fine-grain on the rooted ring (§4.1): an action's foreign
//         footprint must stay on its tree links — parent, children, and
//         (for the root) the leaves it polls — and no action may touch
//         more than one foreign slot (every ring node has one parent XOR
//         is the root, and at most one child).
//   rbp — RB over the two intersecting rings of Fig 2(b): same link rule;
//         the root legitimately polls one leaf and drives one child PER
//         RING, so the per-action foreign cap is lifted (the allowed-set
//         check still pins every touched slot to a declared link).
//   mb  — §5's read-XOR-write rule at process-record granularity: an
//         action either touches exactly one ring neighbour or only its own
//         slot (lint_granularity forces the cap to 1 for this class).
#pragma once

#include <cstddef>
#include <string>
#include <type_traits>
#include <vector>

#include "audit/audit.hpp"
#include "core/rb.hpp"
#include "topology/topology.hpp"

namespace ftbar::audit {

/// Foreign slots an action owned by j may touch on a rooted tree with
/// leaf->root feedback: its parent, its children, and — for the root —
/// the leaves whose completion it polls.
inline std::vector<std::vector<int>> tree_allowed_foreign(
    const topology::Topology& topo) {
  std::vector<std::vector<int>> allowed(static_cast<std::size_t>(topo.size()));
  for (int j = 0; j < topo.size(); ++j) {
    auto& slots = allowed[static_cast<std::size_t>(j)];
    if (topo.parent(j) >= 0) slots.push_back(topo.parent(j));
    for (const int c : topo.children(j)) slots.push_back(c);
    if (j == topo.root()) {
      for (const int l : topo.leaves()) slots.push_back(l);
    }
  }
  return allowed;
}

/// Ring neighbours {j-1, j+1} (mod n) — MB's communication structure.
inline std::vector<std::vector<int>> ring_allowed_foreign(std::size_t procs) {
  const int n = static_cast<int>(procs);
  std::vector<std::vector<int>> allowed(procs);
  for (int j = 0; j < n; ++j) {
    allowed[static_cast<std::size_t>(j)] = {(j + n - 1) % n, (j + 1) % n};
  }
  return allowed;
}

/// Extra probe roots for the tree-barrier programs: the mid-recovery
/// BOT/TOP wave states — a non-leaf at BOT with every child already TOP.
/// The bundle's perturbed root set corrupts ONE slot, and no action
/// produces BOT, so a multi-child T4 guard (RB' root) is never within one
/// substitution of flipping there and its read-set would go un-witnessed
/// (a spurious tightness warning). These states are reachable under the
/// paper's fault model via repeated faults; only the checker's root
/// reduction excludes them. Returns {} for non-RB record types.
template <class P>
[[nodiscard]] std::vector<std::vector<P>> make_extra_probe_roots(
    const std::string& program, const check::ProgramBundle<P>& bundle) {
  std::vector<std::vector<P>> roots;
  if constexpr (std::is_same_v<P, core::RbProc>) {
    if ((program == "rb" || program == "rbp") && !bundle.start_roots.empty()) {
      const auto n = static_cast<int>(bundle.procs);
      const auto topo = program == "rb" ? topology::Topology::ring(n)
                                        : topology::Topology::two_ring(n);
      for (int j = 0; j < topo.size(); ++j) {
        if (topo.is_leaf(j)) continue;
        auto s = bundle.start_roots.front();
        s[static_cast<std::size_t>(j)].sn = core::kSnBot;
        for (const int c : topo.children(j)) {
          s[static_cast<std::size_t>(c)].sn = core::kSnTop;
        }
        roots.push_back(std::move(s));
      }
    }
  } else {
    (void)program;
    (void)bundle;
  }
  return roots;
}

/// The audit configuration for one of the seed programs ("cb" | "rb" |
/// "rbp" | "mb") at the given size. Unknown keys get the coarse rule.
inline AuditConfig make_audit_config(const std::string& program,
                                     std::size_t procs) {
  AuditConfig cfg;
  cfg.program = program;
  if (program == "rb" || program == "rbp") {
    const auto topo = program == "rb"
                          ? topology::Topology::ring(static_cast<int>(procs))
                          : topology::Topology::two_ring(static_cast<int>(procs));
    cfg.granularity.klass = GranularityClass::kLocal;
    cfg.granularity.allowed_foreign = tree_allowed_foreign(topo);
    cfg.granularity.max_foreign = program == "rb" ? 1 : -1;
    cfg.granularity_name =
        program == "rb" ? "fine-grain(ring)" : "fine-grain(two-ring)";
  } else if (program == "mb") {
    cfg.granularity.klass = GranularityClass::kMbReadXorWrite;
    cfg.granularity.allowed_foreign = ring_allowed_foreign(procs);
    cfg.granularity_name = "read-xor-write(ring)";
  }
  return cfg;
}

}  // namespace ftbar::audit
