// Throughput of the check/ subsystem vs the seed sim::Explorer.
//
// Two workloads, both exhausting the undetectable-fault neighbourhood of
// RB on the ring:
//
//   rb_n4      — N = 4, ~1.3k states. Historical comparison family (the
//                PR 3/PR 4 records were taken on it); per-state costs
//                dominate and the whole space fits in L1, so it CANNOT
//                show parallel speedup — it exists for the seed/pr3
//                single-thread comparisons and the chunk ablation.
//   rb_n8_ph8  — N = 8, num_phases = 8, ~73k states (exhausts since
//                PR 4). THE ACCEPTANCE FAMILY: the scaling criterion is
//                Checker/rb_n8_ph8/interleaving/ws/threads:8 beating
//                .../threads:1 (parallel speedup > 1), which
//                check_scale_guard.cpp enforces in ctest on any machine
//                with >= 4 hardware threads. bench-check-json records it
//                with chunk_size and the recording machine's CPU count in
//                the JSON context.
//
// Thread counts above the machine's hardware_concurrency are SKIPPED via
// SkipWithError rather than silently recorded: an oversubscribed row
// measures scheduler thrash, not scaling, but looks exactly like scaling
// data once the JSON leaves the machine it was taken on. Skipped rows stay
// in the JSON (error_occurred: true) so the record says what was not
// measured and why.
//
// Every Checker entry carries:
//   states           — reachable states interned per run
//   speedup_vs_seed  — this entry's states/sec divided by the seed
//                      Explorer's states/sec on the same workload (digest
//                      hash, measured once at startup)
//   speedup_vs_pr3   — same against the PR 3-era algorithm (full guard
//                      rescans, mutex-only dedup, per-state handoff:
//                      incremental/dedup_fast_path off, chunk = 1) at one
//                      thread, so the per-state + batching win is readable
//                      from one JSON regardless of what machine or build
//                      type older records were taken on.
//
// The `chunk` family ablates the batch granularity (chunk = 1 is per-state
// handoff, the PR 4 behaviour); the visited set is identical at every
// setting, only the rate moves.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "check/checker.hpp"
#include "check/programs.hpp"
#include "core/rb.hpp"
#include "sim/model_check.hpp"
#include "trace/replay.hpp"

namespace {

using ftbar::core::RbProc;
using ftbar::core::RbState;

// The digest the checker shards on — byte-serial FNV over the whole state.
struct DigestHash {
  std::size_t operator()(const RbState& s) const {
    return static_cast<std::size_t>(ftbar::trace::state_digest(s));
  }
};

// The per-field mix the repo's tests historically handed the seed Explorer
// (tests/core_rb_test.cpp) — benchmarked so the seed baseline is the seed
// as actually used, not a strawman.
struct FieldHash {
  std::size_t operator()(const RbState& s) const {
    std::size_t h = 1469598103934665603ULL;
    for (const auto& p : s) {
      h ^= (static_cast<std::size_t>(p.sn + 3) * 131u) ^
           (static_cast<std::size_t>(p.cp) * 31u) ^ static_cast<std::size_t>(p.ph);
      h *= 1099511628211ULL;
    }
    return h;
  }
};

/// One benchmark workload: the bundle plus a state budget sized to it (the
/// store allocates its fast-path table and spine reservation from
/// max_states, so the default 2M budget would turn each run() into an
/// allocation benchmark rather than an exploration one).
struct Workload {
  const ftbar::check::ProgramBundle<RbProc>& (*bundle)();
  std::size_t max_states;
  // Memoized reference rates (states/sec), filled on first use.
  double seed_rate = 0;
  double pr3_rate = 0;
};

const ftbar::check::ProgramBundle<RbProc>& rb_n4_bundle() {
  static const auto bundle = ftbar::check::make_rb_bundle(4);
  return bundle;
}
const ftbar::check::ProgramBundle<RbProc>& rb_n8_ph8_bundle() {
  static const auto bundle = ftbar::check::make_rb_bundle(8, 8);
  return bundle;
}

Workload& rb_n4() {
  static Workload wl{&rb_n4_bundle, std::size_t{1} << 14};
  return wl;
}
Workload& rb_n8_ph8() {
  static Workload wl{&rb_n8_ph8_bundle, std::size_t{1} << 17};
  return wl;
}

bool always_true(const std::vector<RbProc>&) { return true; }

/// Skip thread counts the machine cannot actually run in parallel. Exact —
/// no floor: a 2-core box measuring threads:8 would record thrash as data.
/// Returns true when the row was skipped (it stays in the JSON as skipped).
bool skip_if_oversubscribed(benchmark::State& state, std::size_t threads) {
  const unsigned hc = std::thread::hardware_concurrency();
  if (hc != 0 && threads > hc) {
    state.SkipWithError(("skipped: " + std::to_string(threads) +
                         " threads exceed hardware_concurrency=" +
                         std::to_string(hc))
                            .c_str());
    return true;
  }
  return false;
}

struct CheckerConfig {
  ftbar::sim::Semantics semantics = ftbar::sim::Semantics::kInterleaving;
  ftbar::check::Schedule schedule = ftbar::check::Schedule::kBfs;
  bool incremental = true;
  bool dedup_fast_path = true;
  bool symmetry = false;
  std::size_t chunk = 64;  ///< scheduler handoff granularity (states)
};

ftbar::check::CheckOptions to_options(const CheckerConfig& cfg,
                                      const Workload& wl, std::size_t threads) {
  ftbar::check::CheckOptions opt;
  opt.semantics = cfg.semantics;
  opt.threads = threads;
  opt.schedule = cfg.schedule;
  opt.incremental = cfg.incremental;
  opt.dedup_fast_path = cfg.dedup_fast_path;
  opt.symmetry = cfg.symmetry;
  opt.chunk = cfg.chunk;
  opt.max_states = wl.max_states;
  return opt;
}

// Seed states/sec on `wl`, measured once: the denominator of every
// speedup_vs_seed counter of that workload's entries.
double seed_states_per_sec(Workload& wl) {
  if (wl.seed_rate == 0) {
    const auto& b = wl.bundle();
    ftbar::sim::Explorer<RbProc, DigestHash> warm(b.actions, DigestHash{});
    warm.explore(b.perturbed_roots, always_true);
    const auto t0 = std::chrono::steady_clock::now();
    constexpr int kReps = 5;
    std::size_t states = 0;
    for (int i = 0; i < kReps; ++i) {
      ftbar::sim::Explorer<RbProc, DigestHash> seed(b.actions, DigestHash{});
      states += seed.explore(b.perturbed_roots, always_true).states_visited;
    }
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    wl.seed_rate = static_cast<double>(states) / dt.count();
  }
  return wl.seed_rate;
}

// PR 3-equivalent single-thread states/sec on `wl` (full guard rescans,
// mutex-only dedup, per-state handoff), measured once: the denominator of
// every speedup_vs_pr3 counter of that workload's entries.
double pr3_states_per_sec(Workload& wl) {
  if (wl.pr3_rate == 0) {
    const auto& b = wl.bundle();
    CheckerConfig cfg;
    cfg.incremental = false;
    cfg.dedup_fast_path = false;
    cfg.chunk = 1;
    {  // warm-up
      ftbar::check::Checker<RbProc> warm(b.actions, b.procs,
                                         to_options(cfg, wl, 1));
      warm.run(b.perturbed_roots, always_true);
    }
    const auto t0 = std::chrono::steady_clock::now();
    constexpr int kReps = 5;
    std::size_t states = 0;
    for (int i = 0; i < kReps; ++i) {
      ftbar::check::Checker<RbProc> pr3(b.actions, b.procs,
                                        to_options(cfg, wl, 1));
      states += pr3.run(b.perturbed_roots, always_true).states_visited;
    }
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    wl.pr3_rate = static_cast<double>(states) / dt.count();
  }
  return wl.pr3_rate;
}

void BM_SeedExplorer(benchmark::State& state, Workload* wl) {
  const auto& b = wl->bundle();
  std::size_t states = 0;
  for (auto _ : state) {
    ftbar::sim::Explorer<RbProc, DigestHash> seed(b.actions, DigestHash{});
    const auto res = seed.explore(b.perturbed_roots, always_true);
    states = res.states_visited;
    benchmark::DoNotOptimize(res.states_visited);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(states) *
                          static_cast<std::int64_t>(state.iterations()));
  state.counters["states"] = static_cast<double>(states);
}

void BM_SeedExplorerFieldHash(benchmark::State& state, Workload* wl) {
  const auto& b = wl->bundle();
  std::size_t states = 0;
  for (auto _ : state) {
    ftbar::sim::Explorer<RbProc, FieldHash> seed(b.actions, FieldHash{});
    const auto res = seed.explore(b.perturbed_roots, always_true);
    states = res.states_visited;
    benchmark::DoNotOptimize(res.states_visited);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(states) *
                          static_cast<std::int64_t>(state.iterations()));
  state.counters["states"] = static_cast<double>(states);
}

void BM_Checker(benchmark::State& state, CheckerConfig cfg, Workload* wl) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  if (skip_if_oversubscribed(state, threads)) return;
  const auto& b = wl->bundle();
  const auto opt = to_options(cfg, *wl, threads);
  std::size_t states = 0;
  for (auto _ : state) {
    ftbar::check::Checker<RbProc> checker(b.actions, b.procs, opt, b.symmetry);
    const auto res = checker.run(b.perturbed_roots, always_true);
    states = res.states_visited;
    benchmark::DoNotOptimize(res.states_visited);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(states) *
                          static_cast<std::int64_t>(state.iterations()));
  state.counters["states"] = static_cast<double>(states);
  // kIsRate divides by elapsed time, so the reported value is
  // (states/sec of this entry) / (states/sec of the reference run).
  state.counters["speedup_vs_seed"] = benchmark::Counter(
      static_cast<double>(states) * static_cast<double>(state.iterations()) /
          seed_states_per_sec(*wl),
      benchmark::Counter::kIsRate);
  state.counters["speedup_vs_pr3"] = benchmark::Counter(
      static_cast<double>(states) * static_cast<double>(state.iterations()) /
          pr3_states_per_sec(*wl),
      benchmark::Counter::kIsRate);
}

/// Chunk-granularity ablation: range(0) = chunk size, range(1) = threads.
void BM_CheckerChunk(benchmark::State& state, CheckerConfig cfg, Workload* wl) {
  cfg.chunk = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  if (skip_if_oversubscribed(state, threads)) return;
  const auto& b = wl->bundle();
  const auto opt = to_options(cfg, *wl, threads);
  std::size_t states = 0;
  for (auto _ : state) {
    ftbar::check::Checker<RbProc> checker(b.actions, b.procs, opt, b.symmetry);
    const auto res = checker.run(b.perturbed_roots, always_true);
    states = res.states_visited;
    benchmark::DoNotOptimize(res.states_visited);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(states) *
                          static_cast<std::int64_t>(state.iterations()));
  state.counters["states"] = static_cast<double>(states);
  state.counters["speedup_vs_pr3"] = benchmark::Counter(
      static_cast<double>(states) * static_cast<double>(state.iterations()) /
          pr3_states_per_sec(*wl),
      benchmark::Counter::kIsRate);
}

constexpr CheckerConfig kInterleaving{};
constexpr CheckerConfig kMaxpar{ftbar::sim::Semantics::kMaxParallel};
constexpr CheckerConfig kPr3Baseline{ftbar::sim::Semantics::kInterleaving,
                                     ftbar::check::Schedule::kBfs,
                                     /*incremental=*/false,
                                     /*dedup_fast_path=*/false,
                                     /*symmetry=*/false,
                                     /*chunk=*/1};
constexpr CheckerConfig kWorkStealing{ftbar::sim::Semantics::kInterleaving,
                                      ftbar::check::Schedule::kWorkStealing};
constexpr CheckerConfig kSymmetry{ftbar::sim::Semantics::kInterleaving,
                                  ftbar::check::Schedule::kBfs,
                                  /*incremental=*/true,
                                  /*dedup_fast_path=*/true,
                                  /*symmetry=*/true};

// UseRealTime throughout: the checker runs its own worker pool, so CPU-time
// of the calling thread (the default clock) would misreport its rate.

// ---------------------------------------------------------------------------
// rb_n4 — historical comparison family
// ---------------------------------------------------------------------------
BENCHMARK_CAPTURE(BM_SeedExplorerFieldHash, field_hash, &rb_n4())
    ->Name("SeedExplorer/rb_n4/field_hash")
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_SeedExplorer, digest_hash, &rb_n4())
    ->Name("SeedExplorer/rb_n4/digest_hash")
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_Checker, interleaving, kInterleaving, &rb_n4())
    ->Name("Checker/rb_n4/interleaving")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_Checker, maxpar, kMaxpar, &rb_n4())
    ->Name("Checker/rb_n4/maxpar")
    ->Arg(1)
    ->Arg(8)
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_Checker, pr3_baseline, kPr3Baseline, &rb_n4())
    ->Name("Checker/rb_n4/interleaving/pr3_baseline")
    ->Arg(1)
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_Checker, ws, kWorkStealing, &rb_n4())
    ->Name("Checker/rb_n4/interleaving/ws")
    ->Arg(1)
    ->Arg(8)
    ->UseRealTime();
// Symmetry on the undetectable workload mostly measures canonicalization
// overhead: corruption roots pin the recovery transients to one phase, so
// only the legitimate cycling region collapses (the `states` counter shows
// the quotient size; check_perf_guard pins the full group-order reduction
// on the phase-closed fault-free space).
BENCHMARK_CAPTURE(BM_Checker, symmetry, kSymmetry, &rb_n4())
    ->Name("Checker/rb_n4/interleaving/symmetry")
    ->Arg(1)
    ->UseRealTime();

// ---------------------------------------------------------------------------
// rb_n8_ph8 — the acceptance family (73k states; the scaling criterion)
// ---------------------------------------------------------------------------
BENCHMARK_CAPTURE(BM_SeedExplorer, digest_hash, &rb_n8_ph8())
    ->Name("SeedExplorer/rb_n8_ph8/digest_hash")
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_Checker, interleaving, kInterleaving, &rb_n8_ph8())
    ->Name("Checker/rb_n8_ph8/interleaving")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_Checker, ws, kWorkStealing, &rb_n8_ph8())
    ->Name("Checker/rb_n8_ph8/interleaving/ws")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_Checker, pr3_baseline, kPr3Baseline, &rb_n8_ph8())
    ->Name("Checker/rb_n8_ph8/interleaving/pr3_baseline")
    ->Arg(1)
    ->UseRealTime();
// Batch-granularity ablation: chunk = 1 is per-state handoff (the PR 4
// scheduler); 64 is the default; 256 the chunk capacity. Args = {chunk,
// threads}. The threads:8 rows are the ones that show why chunking exists.
BENCHMARK_CAPTURE(BM_CheckerChunk, chunk, kWorkStealing, &rb_n8_ph8())
    ->Name("Checker/rb_n8_ph8/interleaving/ws/chunk")
    ->Args({1, 1})
    ->Args({64, 1})
    ->Args({256, 1})
    ->Args({1, 8})
    ->Args({64, 8})
    ->Args({256, 8})
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
