// Throughput of the check/ subsystem vs the seed sim::Explorer on the
// acceptance workload: exhausting the undetectable-fault neighbourhood of
// RB on the ring at N = 4 (`ftbar_check --program rb --n 4`).
//
// `bench-check-json` records this as BENCH_check.json. Every Checker entry
// carries two counters:
//   states           — reachable states interned per run
//   speedup_vs_seed  — this entry's states/sec divided by the seed
//                      Explorer's states/sec (digest hash, measured once at
//                      startup on the same workload); the acceptance
//                      criterion reads Checker/interleaving/threads:8.
//
// Thread-count entries above the machine's core count measure oversubscription,
// not scaling: on a single-core container threads:8 ≈ threads:1, and the
// criterion's 3× is only observable on a machine with ≥ 8 hardware threads.
// The JSON's num_cpus field says which case a given record is.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstddef>
#include <vector>

#include "check/checker.hpp"
#include "check/programs.hpp"
#include "core/rb.hpp"
#include "sim/model_check.hpp"
#include "trace/replay.hpp"

namespace {

using ftbar::core::RbProc;
using ftbar::core::RbState;

// The digest the checker shards on — byte-serial FNV over the whole state.
struct DigestHash {
  std::size_t operator()(const RbState& s) const {
    return static_cast<std::size_t>(ftbar::trace::state_digest(s));
  }
};

// The per-field mix the repo's tests historically handed the seed Explorer
// (tests/core_rb_test.cpp) — benchmarked so the seed baseline is the seed
// as actually used, not a strawman.
struct FieldHash {
  std::size_t operator()(const RbState& s) const {
    std::size_t h = 1469598103934665603ULL;
    for (const auto& p : s) {
      h ^= (static_cast<std::size_t>(p.sn + 3) * 131u) ^
           (static_cast<std::size_t>(p.cp) * 31u) ^ static_cast<std::size_t>(p.ph);
      h *= 1099511628211ULL;
    }
    return h;
  }
};

const ftbar::check::ProgramBundle<RbProc>& workload() {
  static const auto bundle = ftbar::check::make_rb_bundle(4);
  return bundle;
}

bool always_true(const std::vector<RbProc>&) { return true; }

// Seed states/sec on the same workload, measured once: the denominator of
// every speedup_vs_seed counter.
double seed_states_per_sec() {
  static const double rate = [] {
    const auto& b = workload();
    ftbar::sim::Explorer<RbProc, DigestHash> warm(b.actions, DigestHash{});
    warm.explore(b.perturbed_roots, always_true);
    const auto t0 = std::chrono::steady_clock::now();
    constexpr int kReps = 25;
    std::size_t states = 0;
    for (int i = 0; i < kReps; ++i) {
      ftbar::sim::Explorer<RbProc, DigestHash> seed(b.actions, DigestHash{});
      states += seed.explore(b.perturbed_roots, always_true).states_visited;
    }
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    return static_cast<double>(states) / dt.count();
  }();
  return rate;
}

template <class Hash>
void BM_SeedExplorer(benchmark::State& state) {
  const auto& b = workload();
  std::size_t states = 0;
  for (auto _ : state) {
    ftbar::sim::Explorer<RbProc, Hash> seed(b.actions, Hash{});
    const auto res = seed.explore(b.perturbed_roots, always_true);
    states = res.states_visited;
    benchmark::DoNotOptimize(res.states_visited);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(states) *
                          static_cast<std::int64_t>(state.iterations()));
  state.counters["states"] = static_cast<double>(states);
}

void BM_Checker(benchmark::State& state, ftbar::sim::Semantics semantics) {
  const auto& b = workload();
  ftbar::check::CheckOptions opt;
  opt.semantics = semantics;
  opt.threads = static_cast<std::size_t>(state.range(0));
  std::size_t states = 0;
  for (auto _ : state) {
    ftbar::check::Checker<RbProc> checker(b.actions, b.procs, opt);
    const auto res = checker.run(b.perturbed_roots, always_true);
    states = res.states_visited;
    benchmark::DoNotOptimize(res.states_visited);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(states) *
                          static_cast<std::int64_t>(state.iterations()));
  state.counters["states"] = static_cast<double>(states);
  // kIsRate divides by elapsed time, so the reported value is
  // (states/sec of this entry) / (states/sec of the seed Explorer).
  state.counters["speedup_vs_seed"] = benchmark::Counter(
      static_cast<double>(states) * static_cast<double>(state.iterations()) /
          seed_states_per_sec(),
      benchmark::Counter::kIsRate);
}

// UseRealTime throughout: the checker runs its own worker pool, so CPU-time
// of the calling thread (the default clock) would misreport its rate.
BENCHMARK_TEMPLATE(BM_SeedExplorer, FieldHash)
    ->Name("SeedExplorer/rb_n4/field_hash")
    ->UseRealTime();
BENCHMARK_TEMPLATE(BM_SeedExplorer, DigestHash)
    ->Name("SeedExplorer/rb_n4/digest_hash")
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_Checker, interleaving, ftbar::sim::Semantics::kInterleaving)
    ->Name("Checker/rb_n4/interleaving")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_Checker, maxpar, ftbar::sim::Semantics::kMaxParallel)
    ->Name("Checker/rb_n4/maxpar")
    ->Arg(1)
    ->Arg(8)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
