// Throughput of the check/ subsystem vs the seed sim::Explorer on the
// acceptance workload: exhausting the undetectable-fault neighbourhood of
// RB on the ring at N = 4 (`ftbar_check --program rb --n 4`).
//
// `bench-check-json` records this as BENCH_check.json. Every Checker entry
// carries two counters:
//   states           — reachable states interned per run
//   speedup_vs_seed  — this entry's states/sec divided by the seed
//                      Explorer's states/sec (digest hash, measured once at
//                      startup on the same workload); the acceptance
//                      criterion reads Checker/interleaving/threads:8.
//
// Thread-count entries above the machine's core count measure oversubscription,
// not scaling: on a single-core container threads:8 ≈ threads:1, and the
// criterion's 3× is only observable on a machine with ≥ 8 hardware threads.
// The JSON's num_cpus field says which case a given record is.
//
// The `pr3_baseline` entry re-runs the checker with the incremental
// successor generator and the lock-free duplicate fast path switched OFF —
// the PR 3 algorithm inside the current code — and every other Checker
// entry carries a `speedup_vs_pr3` counter against its single-thread rate,
// so the per-state optimisation win is readable from one JSON regardless of
// what machine or build type older records were taken on (the PR 3-era
// BENCH_check.json carried no provenance at all — its only build-type-ish
// field, `library_build_type`, describes the system google-benchmark
// library, not this repo's flags; record_bench.cmake now stamps every
// record with the repo's build type and git revision).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstddef>
#include <vector>

#include "check/checker.hpp"
#include "check/programs.hpp"
#include "core/rb.hpp"
#include "sim/model_check.hpp"
#include "trace/replay.hpp"

namespace {

using ftbar::core::RbProc;
using ftbar::core::RbState;

// The digest the checker shards on — byte-serial FNV over the whole state.
struct DigestHash {
  std::size_t operator()(const RbState& s) const {
    return static_cast<std::size_t>(ftbar::trace::state_digest(s));
  }
};

// The per-field mix the repo's tests historically handed the seed Explorer
// (tests/core_rb_test.cpp) — benchmarked so the seed baseline is the seed
// as actually used, not a strawman.
struct FieldHash {
  std::size_t operator()(const RbState& s) const {
    std::size_t h = 1469598103934665603ULL;
    for (const auto& p : s) {
      h ^= (static_cast<std::size_t>(p.sn + 3) * 131u) ^
           (static_cast<std::size_t>(p.cp) * 31u) ^ static_cast<std::size_t>(p.ph);
      h *= 1099511628211ULL;
    }
    return h;
  }
};

const ftbar::check::ProgramBundle<RbProc>& workload() {
  static const auto bundle = ftbar::check::make_rb_bundle(4);
  return bundle;
}

bool always_true(const std::vector<RbProc>&) { return true; }

// Seed states/sec on the same workload, measured once: the denominator of
// every speedup_vs_seed counter.
double seed_states_per_sec() {
  static const double rate = [] {
    const auto& b = workload();
    ftbar::sim::Explorer<RbProc, DigestHash> warm(b.actions, DigestHash{});
    warm.explore(b.perturbed_roots, always_true);
    const auto t0 = std::chrono::steady_clock::now();
    constexpr int kReps = 25;
    std::size_t states = 0;
    for (int i = 0; i < kReps; ++i) {
      ftbar::sim::Explorer<RbProc, DigestHash> seed(b.actions, DigestHash{});
      states += seed.explore(b.perturbed_roots, always_true).states_visited;
    }
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    return static_cast<double>(states) / dt.count();
  }();
  return rate;
}

template <class Hash>
void BM_SeedExplorer(benchmark::State& state) {
  const auto& b = workload();
  std::size_t states = 0;
  for (auto _ : state) {
    ftbar::sim::Explorer<RbProc, Hash> seed(b.actions, Hash{});
    const auto res = seed.explore(b.perturbed_roots, always_true);
    states = res.states_visited;
    benchmark::DoNotOptimize(res.states_visited);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(states) *
                          static_cast<std::int64_t>(state.iterations()));
  state.counters["states"] = static_cast<double>(states);
}

struct CheckerConfig {
  ftbar::sim::Semantics semantics = ftbar::sim::Semantics::kInterleaving;
  ftbar::check::Schedule schedule = ftbar::check::Schedule::kBfs;
  bool incremental = true;
  bool dedup_fast_path = true;
  bool symmetry = false;
};

ftbar::check::CheckOptions to_options(const CheckerConfig& cfg, std::size_t threads) {
  ftbar::check::CheckOptions opt;
  opt.semantics = cfg.semantics;
  opt.threads = threads;
  opt.schedule = cfg.schedule;
  opt.incremental = cfg.incremental;
  opt.dedup_fast_path = cfg.dedup_fast_path;
  opt.symmetry = cfg.symmetry;
  // Budget sized to the ~1.3k-state workload: the store allocates its
  // duplicate fast-path table (and spine reservation) from max_states, and
  // the default 2M budget would turn each run() into an allocation
  // benchmark rather than an exploration one.
  opt.max_states = 1 << 14;
  return opt;
}

// PR 3-equivalent single-thread states/sec (full guard rescans, mutex-only
// dedup), measured once: the denominator of every speedup_vs_pr3 counter.
double pr3_states_per_sec() {
  static const double rate = [] {
    const auto& b = workload();
    CheckerConfig cfg;
    cfg.incremental = false;
    cfg.dedup_fast_path = false;
    {  // warm-up
      ftbar::check::Checker<RbProc> warm(b.actions, b.procs, to_options(cfg, 1));
      warm.run(b.perturbed_roots, always_true);
    }
    const auto t0 = std::chrono::steady_clock::now();
    constexpr int kReps = 25;
    std::size_t states = 0;
    for (int i = 0; i < kReps; ++i) {
      ftbar::check::Checker<RbProc> pr3(b.actions, b.procs, to_options(cfg, 1));
      states += pr3.run(b.perturbed_roots, always_true).states_visited;
    }
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    return static_cast<double>(states) / dt.count();
  }();
  return rate;
}

void BM_Checker(benchmark::State& state, CheckerConfig cfg) {
  const auto& b = workload();
  const auto opt = to_options(cfg, static_cast<std::size_t>(state.range(0)));
  std::size_t states = 0;
  for (auto _ : state) {
    ftbar::check::Checker<RbProc> checker(b.actions, b.procs, opt, b.symmetry);
    const auto res = checker.run(b.perturbed_roots, always_true);
    states = res.states_visited;
    benchmark::DoNotOptimize(res.states_visited);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(states) *
                          static_cast<std::int64_t>(state.iterations()));
  state.counters["states"] = static_cast<double>(states);
  // kIsRate divides by elapsed time, so the reported value is
  // (states/sec of this entry) / (states/sec of the reference run).
  state.counters["speedup_vs_seed"] = benchmark::Counter(
      static_cast<double>(states) * static_cast<double>(state.iterations()) /
          seed_states_per_sec(),
      benchmark::Counter::kIsRate);
  state.counters["speedup_vs_pr3"] = benchmark::Counter(
      static_cast<double>(states) * static_cast<double>(state.iterations()) /
          pr3_states_per_sec(),
      benchmark::Counter::kIsRate);
}

// UseRealTime throughout: the checker runs its own worker pool, so CPU-time
// of the calling thread (the default clock) would misreport its rate.
BENCHMARK_TEMPLATE(BM_SeedExplorer, FieldHash)
    ->Name("SeedExplorer/rb_n4/field_hash")
    ->UseRealTime();
BENCHMARK_TEMPLATE(BM_SeedExplorer, DigestHash)
    ->Name("SeedExplorer/rb_n4/digest_hash")
    ->UseRealTime();
constexpr CheckerConfig kInterleaving{};
constexpr CheckerConfig kMaxpar{ftbar::sim::Semantics::kMaxParallel};
constexpr CheckerConfig kPr3Baseline{ftbar::sim::Semantics::kInterleaving,
                                     ftbar::check::Schedule::kBfs,
                                     /*incremental=*/false,
                                     /*dedup_fast_path=*/false};
constexpr CheckerConfig kWorkStealing{ftbar::sim::Semantics::kInterleaving,
                                      ftbar::check::Schedule::kWorkStealing};
constexpr CheckerConfig kSymmetry{ftbar::sim::Semantics::kInterleaving,
                                  ftbar::check::Schedule::kBfs,
                                  /*incremental=*/true,
                                  /*dedup_fast_path=*/true,
                                  /*symmetry=*/true};

BENCHMARK_CAPTURE(BM_Checker, interleaving, kInterleaving)
    ->Name("Checker/rb_n4/interleaving")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_Checker, maxpar, kMaxpar)
    ->Name("Checker/rb_n4/maxpar")
    ->Arg(1)
    ->Arg(8)
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_Checker, pr3_baseline, kPr3Baseline)
    ->Name("Checker/rb_n4/interleaving/pr3_baseline")
    ->Arg(1)
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_Checker, ws, kWorkStealing)
    ->Name("Checker/rb_n4/interleaving/ws")
    ->Arg(1)
    ->Arg(8)
    ->UseRealTime();
// Symmetry on the undetectable workload mostly measures canonicalization
// overhead: corruption roots pin the recovery transients to one phase, so
// only the legitimate cycling region collapses (the `states` counter shows
// the quotient size; check_perf_guard pins the full group-order reduction
// on the phase-closed fault-free space).
BENCHMARK_CAPTURE(BM_Checker, symmetry, kSymmetry)
    ->Name("Checker/rb_n4/interleaving/symmetry")
    ->Arg(1)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
