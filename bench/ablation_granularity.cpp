// Ablation (paper, Sections 3-5): the cost of refining action granularity.
// CB reads all processes atomically, RB one neighbour + own update, MB only
// local copies (message-implementable). The bench reports, per program on a
// ring of N processes:
//   * steps per successful phase under fair interleaving and under maximal
//     parallelism, and
//   * steps to stabilize after corrupting every process undetectably.
//
// MB pays roughly 2x RB's steps — its ring effectively has 2(N+1) cells —
// which is the granularity cost the Section 5 refinement accepts to become
// message-passing implementable.
//
// Usage: ablation_granularity [--csv]
#include <cstring>
#include <iostream>

#include "core/cb.hpp"
#include "core/mb.hpp"
#include "core/rb.hpp"
#include "sim/step_engine.hpp"
#include "util/csv.hpp"

namespace {

using namespace ftbar;

template <class P>
double steps_per_phase(std::vector<P> start, std::vector<sim::Action<P>> actions,
                       core::SpecMonitor& monitor, sim::Semantics sem,
                       std::uint64_t seed) {
  sim::StepEngine<P> eng(std::move(start), std::move(actions), util::Rng(seed), sem);
  constexpr std::size_t kPhases = 24;
  eng.run_until([&](const std::vector<P>&) {
    return monitor.successful_phases() >= kPhases;
  }, 5'000'000);
  return static_cast<double>(eng.steps_taken()) / kPhases;
}

template <class P, class Perturb, class Legit>
double recovery_steps(std::vector<P> start, std::vector<sim::Action<P>> actions,
                      Perturb&& perturb, Legit&& legit, std::uint64_t seed) {
  sim::StepEngine<P> eng(std::move(start), std::move(actions), util::Rng(seed),
                         sim::Semantics::kInterleaving);
  util::Rng fault_rng(seed ^ 0xfeedULL);
  for (std::size_t j = 0; j < eng.mutable_state().size(); ++j) {
    perturb(j, eng.mutable_state()[j], fault_rng);
  }
  const auto steps = eng.run_until(std::forward<Legit>(legit), 5'000'000);
  return steps ? static_cast<double>(*steps) : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::strcmp(argv[1], "--csv") == 0;
  constexpr int kProcs = 8;
  constexpr int kPhaseCount = 2;

  util::Table table({"program", "steps/phase interleaving", "steps/phase max-par",
                     "recovery steps (interleaving)"});
  table.set_precision(1);

  {
    const core::CbOptions opt{kProcs, kPhaseCount};
    core::SpecMonitor m1(kProcs, kPhaseCount), m2(kProcs, kPhaseCount);
    const double inter =
        steps_per_phase(core::cb_start_state(opt), core::make_cb_actions(opt, &m1),
                        m1, sim::Semantics::kInterleaving, 11);
    const double maxp =
        steps_per_phase(core::cb_start_state(opt), core::make_cb_actions(opt, &m2),
                        m2, sim::Semantics::kMaxParallel, 12);
    const double rec = recovery_steps(
        core::cb_start_state(opt), core::make_cb_actions(opt),
        core::cb_undetectable_fault(opt),
        [&](const core::CbState& s) { return core::cb_legitimate(s, kPhaseCount); },
        13);
    table.add_row({std::string("CB (coarse grain)"), inter, maxp, rec});
  }
  {
    const auto opt = core::rb_ring_options(kProcs, kPhaseCount);
    core::SpecMonitor m1(kProcs, kPhaseCount), m2(kProcs, kPhaseCount);
    const double inter =
        steps_per_phase(core::rb_start_state(opt), core::make_rb_actions(opt, &m1),
                        m1, sim::Semantics::kInterleaving, 21);
    const double maxp =
        steps_per_phase(core::rb_start_state(opt), core::make_rb_actions(opt, &m2),
                        m2, sim::Semantics::kMaxParallel, 22);
    const double rec = recovery_steps(
        core::rb_start_state(opt), core::make_rb_actions(opt),
        core::rb_undetectable_fault(opt),
        [](const core::RbState& s) { return core::rb_is_start_state(s); }, 23);
    table.add_row({std::string("RB (ring, neighbour reads)"), inter, maxp, rec});
  }
  {
    const core::MbOptions opt{kProcs, kPhaseCount, 0};
    core::SpecMonitor m1(kProcs, kPhaseCount), m2(kProcs, kPhaseCount);
    const double inter =
        steps_per_phase(core::mb_start_state(opt), core::make_mb_actions(opt, &m1),
                        m1, sim::Semantics::kInterleaving, 31);
    const double maxp =
        steps_per_phase(core::mb_start_state(opt), core::make_mb_actions(opt, &m2),
                        m2, sim::Semantics::kMaxParallel, 32);
    const double rec = recovery_steps(
        core::mb_start_state(opt), core::make_mb_actions(opt),
        core::mb_undetectable_fault(opt),
        [](const core::MbState& s) { return core::mb_is_start_state(s); }, 33);
    table.add_row({std::string("MB (message passing)"), inter, maxp, rec});
  }

  std::cout << "Ablation: action granularity across the refinement chain\n"
            << "(ring of " << kProcs << " processes; recovery = steps back to a "
            << "legitimate state\n after corrupting every process undetectably; "
            << "-1 = not recovered)\n\n";
  if (csv) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
}
