// Ablation (paper, Sections 3-5): the cost of refining action granularity.
// CB reads all processes atomically, RB one neighbour + own update, MB only
// local copies (message-implementable). The bench reports, per program on a
// ring of N processes:
//   * steps per successful phase under fair interleaving and under maximal
//     parallelism, and
//   * steps to stabilize after corrupting every process undetectably.
//
// MB pays roughly 2x RB's steps — its ring effectively has 2(N+1) cells —
// which is the granularity cost the Section 5 refinement accepts to become
// message-passing implementable.
//
// The 3 programs x 3 metrics form a 9-item grid run on the sweep runner;
// each item derives its own RNG stream and the table is reduced in grid
// order, so output is byte-identical for any --threads value.
//
// Usage: ablation_granularity [--csv] [--threads N] [phases]
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "core/cb.hpp"
#include "core/mb.hpp"
#include "core/rb.hpp"
#include "sim/step_engine.hpp"
#include "util/csv.hpp"
#include "util/sweep.hpp"

namespace {

using namespace ftbar;

constexpr std::uint64_t kSeed = 0xab1a70ULL;
constexpr int kProcs = 8;
constexpr int kPhaseCount = 2;

template <class P>
double steps_per_phase(std::vector<P> start, std::vector<sim::Action<P>> actions,
                       core::SpecMonitor& monitor, sim::Semantics sem,
                       util::Rng rng, std::size_t phases) {
  sim::StepEngine<P> eng(std::move(start), std::move(actions), rng, sem);
  eng.run_until([&](const std::vector<P>&) {
    return monitor.successful_phases() >= phases;
  }, 5'000'000);
  return static_cast<double>(eng.steps_taken()) / static_cast<double>(phases);
}

template <class P, class Perturb, class Legit>
double recovery_steps(std::vector<P> start, std::vector<sim::Action<P>> actions,
                      Perturb&& perturb, Legit&& legit, util::Rng rng) {
  sim::StepEngine<P> eng(std::move(start), std::move(actions), rng,
                         sim::Semantics::kInterleaving);
  util::Rng fault_rng = rng.fork(0xfeedULL);
  for (std::size_t j = 0; j < eng.mutable_state().size(); ++j) {
    perturb(j, eng.mutable_state()[j], fault_rng);
  }
  const auto steps = eng.run_until(std::forward<Legit>(legit), 5'000'000);
  return steps ? static_cast<double>(*steps) : -1.0;
}

/// Work item (program, metric) -> scalar. Every item builds its own engine
/// and monitor so items are independent (and thus safely parallel).
double run_item(std::size_t idx, std::size_t phases) {
  const std::size_t program = idx / 3;
  const std::size_t metric = idx % 3;
  util::Rng rng = util::stream_rng(kSeed, idx);

  switch (program) {
    case 0: {  // CB
      const core::CbOptions opt{kProcs, kPhaseCount};
      if (metric < 2) {
        core::SpecMonitor m(kProcs, kPhaseCount);
        return steps_per_phase(core::cb_start_state(opt),
                               core::make_cb_actions(opt, &m), m,
                               metric == 0 ? sim::Semantics::kInterleaving
                                           : sim::Semantics::kMaxParallel,
                               rng, phases);
      }
      return recovery_steps(
          core::cb_start_state(opt), core::make_cb_actions(opt),
          core::cb_undetectable_fault(opt),
          [](const core::CbState& s) { return core::cb_legitimate(s, kPhaseCount); },
          rng);
    }
    case 1: {  // RB
      const auto opt = core::rb_ring_options(kProcs, kPhaseCount);
      if (metric < 2) {
        core::SpecMonitor m(kProcs, kPhaseCount);
        return steps_per_phase(core::rb_start_state(opt),
                               core::make_rb_actions(opt, &m), m,
                               metric == 0 ? sim::Semantics::kInterleaving
                                           : sim::Semantics::kMaxParallel,
                               rng, phases);
      }
      return recovery_steps(
          core::rb_start_state(opt), core::make_rb_actions(opt),
          core::rb_undetectable_fault(opt),
          [](const core::RbState& s) { return core::rb_is_start_state(s); }, rng);
    }
    default: {  // MB
      const core::MbOptions opt{kProcs, kPhaseCount, 0};
      if (metric < 2) {
        core::SpecMonitor m(kProcs, kPhaseCount);
        return steps_per_phase(core::mb_start_state(opt),
                               core::make_mb_actions(opt, &m), m,
                               metric == 0 ? sim::Semantics::kInterleaving
                                           : sim::Semantics::kMaxParallel,
                               rng, phases);
      }
      return recovery_steps(
          core::mb_start_state(opt), core::make_mb_actions(opt),
          core::mb_undetectable_fault(opt),
          [](const core::MbState& s) { return core::mb_is_start_state(s); }, rng);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = util::parse_sweep_cli(argc, argv);
  const std::size_t phases = cli.positional_or(0, 24);

  util::Sweep sweep(cli.threads);
  const auto results = sweep.map<double>(
      9, [phases](std::size_t idx) { return run_item(idx, phases); });

  util::Table table({"program", "steps/phase interleaving", "steps/phase max-par",
                     "recovery steps (interleaving)"});
  table.set_precision(1);
  const char* names[] = {"CB (coarse grain)", "RB (ring, neighbour reads)",
                         "MB (message passing)"};
  for (std::size_t p = 0; p < 3; ++p) {
    table.add_row({std::string(names[p]), results[p * 3], results[p * 3 + 1],
                   results[p * 3 + 2]});
  }

  std::cout << "Ablation: action granularity across the refinement chain\n"
            << "(ring of " << kProcs << " processes; recovery = steps back to a "
            << "legitimate state\n after corrupting every process undetectably; "
            << "-1 = not recovered)\n\n";
  if (cli.csv) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
}
