// Shared harness for the real-thread barrier microbenches: thread spawning,
// an oversubscription guard, and the per-barrier counters every barrier
// benchmark reports the same way, so BENCH_hwbar.json rows are directly
// comparable across std::barrier, the fault-intolerant baselines and the
// fault-tolerant hwbar variants.
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace ftbar::benchbar {

/// Phases per benchmark iteration: enough that barrier cost dominates the
/// thread spawn/join around it, small enough that one iteration stays fast.
constexpr int kPhasesPerIteration = 32;

template <class Run>
void run_threads(int num_threads, Run&& run) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_threads));
  for (int tid = 0; tid < num_threads; ++tid) {
    threads.emplace_back([&, tid] { run(tid); });
  }
  for (auto& t : threads) t.join();
}

/// Spin-barrier numbers from an oversubscribed box measure the scheduler,
/// not the barrier, so thread counts above the hardware (floor 4, so the
/// 2/4 points always record even on tiny CI machines) are skipped rather
/// than run. SkipWithError keeps the row in the JSON with an explicit
/// error_message instead of silently recording garbage.
inline int max_bench_threads() {
  return std::max(4, static_cast<int>(std::thread::hardware_concurrency()));
}

inline bool skip_if_oversubscribed(benchmark::State& state, int n) {
  if (n <= max_bench_threads()) return false;
  const std::string why =
      "skipped: " + std::to_string(n) + " threads would oversubscribe " +
      std::to_string(std::thread::hardware_concurrency()) +
      " hardware threads";
  state.SkipWithError(why.c_str());
  return true;
}

/// items/sec = barrier episodes per second, plus an explicit ns_per_barrier
/// counter (kIsRate|kInvert with the total scaled by 1e-9 yields
/// elapsed_ns / episodes) — the number the overhead tables quote.
inline void set_barrier_counters(benchmark::State& state,
                                 int phases = kPhasesPerIteration) {
  const double total =
      static_cast<double>(state.iterations()) * static_cast<double>(phases);
  state.SetItemsProcessed(static_cast<std::int64_t>(total));
  state.counters["ns_per_barrier"] = benchmark::Counter(
      total * 1e-9,
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

}  // namespace ftbar::benchbar
