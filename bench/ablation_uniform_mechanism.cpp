// Ablation (paper, Section 1): the paper chooses ONE uniform mechanism —
// the repeat/ready machinery of RB — for every detectable fault, arguing
// that "if the overhead of adding fault-tolerance is small, the payoff in
// differentiating the mechanisms is not significant".
//
// This bench quantifies that choice: under PURE message loss (the fault an
// ad-hoc design would specialize for), it compares
//   * a differentiated, loss-only barrier: all-to-all arrive with epoch
//     stamps and periodic retransmission — handles loss/dup/reorder but has
//     NO channel for process resets (a lost participant state deadlocks it),
//   * the uniform MB-based FaultTolerantBarrier, which handles the whole
//     detectable class.
// Reported: wall time per phase and protocol messages per phase, across
// loss rates. The uniform design costs the same order of messages, which
// is the paper's point.
//
// The (loss, mechanism) grid runs on the sweep runner with the table
// reduced in grid order. Unlike the simulation sweeps, every work item
// here is itself a multi-threaded WALL-CLOCK measurement, so the default
// is --threads 1 (items run sequentially for timing fidelity); pass
// --threads N explicitly to trade fidelity for speed.
//
// Usage: ablation_uniform_mechanism [--csv] [--threads N] [phases]
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "core/ft_barrier.hpp"
#include "util/csv.hpp"
#include "util/sweep.hpp"

namespace {

using namespace ftbar;
using Clock = std::chrono::steady_clock;

/// The differentiated (loss-only) design: all-to-all arrivals with
/// retransmission. ~N^2 messages per phase, no reset tolerance.
class LossOnlyBarrier {
 public:
  LossOnlyBarrier(int num_threads, double drop, std::uint64_t seed)
      : num_threads_(num_threads),
        net_(std::make_unique<runtime::Network>(num_threads, seed)),
        episode_(static_cast<std::size_t>(num_threads), 0),
        seen_(static_cast<std::size_t>(num_threads),
              std::vector<std::uint64_t>(static_cast<std::size_t>(num_threads), 0)) {
    net_->set_default_faults(runtime::LinkFaults{.drop = drop});
  }

  void arrive_and_wait(int tid) {
    const auto utid = static_cast<std::size_t>(tid);
    const std::uint64_t episode = ++episode_[utid];
    seen_[utid][utid] = episode;
    auto last_send = Clock::time_point{};
    for (;;) {
      bool all = true;
      for (int p = 0; p < num_threads_; ++p) {
        if (seen_[utid][static_cast<std::size_t>(p)] < episode) all = false;
      }
      if (all) return;
      const auto now = Clock::now();
      if (now - last_send >= std::chrono::milliseconds(2)) {
        for (int p = 0; p < num_threads_; ++p) {
          if (p != tid) net_->send_value(tid, p, 0, episode);
        }
        last_send = now;
      }
      if (const auto m = net_->recv(tid, std::chrono::milliseconds(1))) {
        if (const auto e = runtime::Network::decode<std::uint64_t>(*m)) {
          auto& h = seen_[utid][static_cast<std::size_t>(m->src)];
          if (*e > h) h = *e;
        }
      }
    }
  }

  /// Even the "simple" loss-only design needs an exit drain: a thread that
  /// stops retransmitting after its last arrive can strand peers whose
  /// copies of that arrival were all dropped.
  void drain(int tid, std::chrono::milliseconds duration) {
    const auto utid = static_cast<std::size_t>(tid);
    const auto deadline = Clock::now() + duration;
    auto last_send = Clock::time_point{};
    while (Clock::now() < deadline) {
      const auto now = Clock::now();
      if (now - last_send >= std::chrono::milliseconds(2)) {
        for (int p = 0; p < num_threads_; ++p) {
          if (p != tid) net_->send_value(tid, p, 0, episode_[utid]);
        }
        last_send = now;
      }
      if (const auto m = net_->recv(tid, std::chrono::milliseconds(1))) {
        if (const auto e = runtime::Network::decode<std::uint64_t>(*m)) {
          auto& h = seen_[utid][static_cast<std::size_t>(m->src)];
          if (*e > h) h = *e;
        }
      }
    }
  }

  [[nodiscard]] runtime::Network::Stats stats() const { return net_->stats(); }

 private:
  int num_threads_;
  std::unique_ptr<runtime::Network> net_;
  std::vector<std::uint64_t> episode_;
  std::vector<std::vector<std::uint64_t>> seen_;
};

struct Measurement {
  double ms_per_phase;
  double msgs_per_phase;
};

constexpr double kDrops[] = {0.0, 0.05, 0.15};

Measurement run_loss_only(int threads, int phases, double drop) {
  LossOnlyBarrier bar(threads, drop, 0x10c0ULL);
  const auto t0 = Clock::now();
  std::vector<std::thread> workers;
  for (int tid = 0; tid < threads; ++tid) {
    workers.emplace_back([&, tid] {
      for (int p = 0; p < phases; ++p) bar.arrive_and_wait(tid);
      bar.drain(tid, std::chrono::milliseconds(drop > 0 ? 50 : 0));
    });
  }
  for (auto& w : workers) w.join();
  const auto elapsed = std::chrono::duration<double, std::milli>(Clock::now() - t0);
  return {elapsed.count() / phases,
          static_cast<double>(bar.stats().sent) / phases};
}

Measurement run_uniform(int threads, int phases, double drop) {
  core::BarrierOptions opt;
  opt.link_faults.drop = drop;
  opt.seed = 0x10c1ULL;
  core::FaultTolerantBarrier bar(threads, opt);
  const auto t0 = Clock::now();
  std::vector<std::thread> workers;
  for (int tid = 0; tid < threads; ++tid) {
    workers.emplace_back([&, tid] {
      for (int done = 0; done < phases;) {
        if (!bar.arrive_and_wait(tid).repeated) ++done;
      }
      bar.finalize(tid, std::chrono::milliseconds(2000));
    });
  }
  for (auto& w : workers) w.join();
  const auto elapsed = std::chrono::duration<double, std::milli>(Clock::now() - t0);
  return {elapsed.count() / phases,
          static_cast<double>(bar.network_stats().sent) / phases};
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = util::parse_sweep_cli(argc, argv);
  const int phases = static_cast<int>(cli.positional_or(0, 40));
  constexpr int kThreads = 4;

  // Items are wall-clock measurements: sequential by default (see header).
  util::Sweep sweep(cli.threads > 0 ? cli.threads : 1);
  const auto results =
      sweep.map<Measurement>(2 * std::size(kDrops), [phases](std::size_t idx) {
        const double drop = kDrops[idx / 2];
        return idx % 2 == 0 ? run_loss_only(kThreads, phases, drop)
                            : run_uniform(kThreads, phases, drop);
      });

  util::Table table({"loss", "mechanism", "ms/phase", "msgs/phase",
                     "tolerates resets"});
  table.set_precision(2);
  for (std::size_t i = 0; i < std::size(kDrops); ++i) {
    const auto& ad_hoc = results[i * 2];
    const auto& uniform = results[i * 2 + 1];
    table.add_row({kDrops[i], std::string("differentiated (loss-only)"),
                   ad_hoc.ms_per_phase, ad_hoc.msgs_per_phase, std::string("no")});
    table.add_row({kDrops[i], std::string("uniform (MB, whole class)"),
                   uniform.ms_per_phase, uniform.msgs_per_phase,
                   std::string("yes")});
  }

  std::cout << "Ablation: uniform vs differentiated fault mechanism\n"
            << "(" << kThreads << " threads, " << phases << " phases/point; the\n"
            << "paper's argument: the uniform design's extra cost is small and\n"
            << "buys tolerance to the entire detectable class)\n\n";
  if (cli.csv) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
}
