// ns/barrier of the native fault-tolerant hwbar variants vs std::barrier
// and the three fault-intolerant src/baseline/ barriers, all on real
// threads through the shared bench/barrier_harness.hpp — one JSON
// (BENCH_hwbar.json via the bench-hwbar-json target) holds every row, so
// the FT-overhead claim of the paper can be read off a single record. The
// BM_HwbarFtOverheadVsStd rows additionally report the ratio directly
// (counter ft_overhead_vs_std), and BM_HwbarCentralDegraded prices the
// scan-path commit mode a run drops into after a death or retire.
#include <benchmark/benchmark.h>

#include <barrier>
#include <chrono>

#include "barrier_harness.hpp"
#include "baseline/central_barrier.hpp"
#include "baseline/dissemination_barrier.hpp"
#include "baseline/tree_barrier.hpp"
#include "hwbar/central.hpp"
#include "hwbar/topo.hpp"
#include "hwbar/tree.hpp"

namespace {

using namespace ftbar;
using benchbar::kPhasesPerIteration;
using benchbar::run_threads;
using benchbar::set_barrier_counters;
using benchbar::skip_if_oversubscribed;

/// Bench options: the detector must never fire under benchmark scheduling
/// noise (a false declaration would silently switch the run into degraded
/// mode and corrupt the numbers).
hwbar::Options bench_options() {
  hwbar::Options opt;
  opt.suspect_after = std::chrono::seconds(30);
  return opt;
}

template <class Bar>
void hwbar_loop(Bar& bar, int n) {
  run_threads(n, [&](int tid) {
    for (int p = 0; p < kPhasesPerIteration; ++p) bar.arrive_and_wait(tid);
  });
}

void BM_StdBarrier(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  if (skip_if_oversubscribed(state, n)) return;
  for (auto _ : state) {
    std::barrier bar(n);
    run_threads(n, [&](int) {
      for (int p = 0; p < kPhasesPerIteration; ++p) bar.arrive_and_wait();
    });
  }
  set_barrier_counters(state);
}

void BM_BaselineCentral(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  if (skip_if_oversubscribed(state, n)) return;
  for (auto _ : state) {
    baseline::CentralBarrier bar(n);
    run_threads(n, [&](int) {
      for (int p = 0; p < kPhasesPerIteration; ++p) bar.arrive_and_wait();
    });
  }
  set_barrier_counters(state);
}

void BM_BaselineTree(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  if (skip_if_oversubscribed(state, n)) return;
  for (auto _ : state) {
    baseline::TreeBarrier bar(n);
    run_threads(n, [&](int tid) {
      for (int p = 0; p < kPhasesPerIteration; ++p) bar.arrive_and_wait(tid);
    });
  }
  set_barrier_counters(state);
}

void BM_BaselineDissemination(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  if (skip_if_oversubscribed(state, n)) return;
  for (auto _ : state) {
    baseline::DisseminationBarrier bar(n);
    run_threads(n, [&](int tid) {
      for (int p = 0; p < kPhasesPerIteration; ++p) bar.arrive_and_wait(tid);
    });
  }
  set_barrier_counters(state);
}

void BM_HwbarCentral(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  if (skip_if_oversubscribed(state, n)) return;
  for (auto _ : state) {
    hwbar::CentralHwBarrier bar(n, bench_options());
    hwbar_loop(bar, n);
  }
  set_barrier_counters(state);
}

void BM_HwbarTree(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  if (skip_if_oversubscribed(state, n)) return;
  for (auto _ : state) {
    hwbar::TreeHwBarrier bar(n, bench_options(), /*arity=*/2);
    hwbar_loop(bar, n);
  }
  set_barrier_counters(state);
}

void BM_HwbarTopoPackageTree(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  if (skip_if_oversubscribed(state, n)) return;
  for (auto _ : state) {
    auto bar = hwbar::TopoHwBarrier::package_tree(
        n, /*threads_per_package=*/4, bench_options());
    hwbar_loop(*bar, n);
  }
  set_barrier_counters(state);
}

/// Degraded (post-fault) mode: one extra slot retires before the measured
/// loop, so every commit goes through the scan path — the steady-state
/// price a run pays after surviving a death.
void BM_HwbarCentralDegraded(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  if (skip_if_oversubscribed(state, n + 1)) return;
  for (auto _ : state) {
    hwbar::CentralHwBarrier bar(n + 1, bench_options());
    bar.retire(n);
    hwbar_loop(bar, n);
  }
  set_barrier_counters(state);
}

/// The headline number: same workload through hwbar-central and
/// std::barrier inside one benchmark, with the ratio reported directly.
void BM_HwbarFtOverheadVsStd(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  if (skip_if_oversubscribed(state, n)) return;
  using clock = std::chrono::steady_clock;
  double hw_ns = 0.0;
  double std_ns = 0.0;
  for (auto _ : state) {
    {
      hwbar::CentralHwBarrier bar(n, bench_options());
      const auto t0 = clock::now();
      hwbar_loop(bar, n);
      hw_ns += std::chrono::duration<double, std::nano>(clock::now() - t0)
                   .count();
    }
    {
      std::barrier bar(n);
      const auto t0 = clock::now();
      run_threads(n, [&](int) {
        for (int p = 0; p < kPhasesPerIteration; ++p) bar.arrive_and_wait();
      });
      std_ns += std::chrono::duration<double, std::nano>(clock::now() - t0)
                    .count();
    }
  }
  set_barrier_counters(state, 2 * kPhasesPerIteration);
  state.counters["ft_overhead_vs_std"] =
      benchmark::Counter(std_ns > 0.0 ? hw_ns / std_ns : 0.0);
}

}  // namespace

#define FTBAR_HWBAR_ARGS \
  ->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond)

BENCHMARK(BM_StdBarrier) FTBAR_HWBAR_ARGS;
BENCHMARK(BM_BaselineCentral) FTBAR_HWBAR_ARGS;
BENCHMARK(BM_BaselineTree) FTBAR_HWBAR_ARGS;
BENCHMARK(BM_BaselineDissemination) FTBAR_HWBAR_ARGS;
BENCHMARK(BM_HwbarCentral) FTBAR_HWBAR_ARGS;
BENCHMARK(BM_HwbarTree) FTBAR_HWBAR_ARGS;
BENCHMARK(BM_HwbarTopoPackageTree) FTBAR_HWBAR_ARGS;
BENCHMARK(BM_HwbarCentralDegraded) FTBAR_HWBAR_ARGS;
BENCHMARK(BM_HwbarFtOverheadVsStd) FTBAR_HWBAR_ARGS;

BENCHMARK_MAIN();
