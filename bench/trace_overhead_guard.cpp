// Trace-overhead guard: the near-zero-cost-when-disabled promise of the
// trace subsystem, enforced as a smoke test.
//
// Two engines run the same RB max-parallel workload:
//   * untraced  — StepEngine<RbProc, false>: the tracing hooks are compiled
//                 out entirely (the pre-trace-subsystem engine);
//   * disabled  — StepEngine<RbProc, true> with NO sink installed: the
//                 shipped default, one null-pointer test per emission site.
//
// Repetitions are interleaved (u, d, u, d, ...) so slow drift (thermal,
// scheduler) hits both variants equally, and each variant is scored by its
// BEST repetition — the standard way to estimate the cost floor under
// noise. The guard fails (exit 1) if the disabled-tracing engine's best
// step rate falls more than kBudget below the untraced engine's.
//
// Usage: trace_overhead_guard [steps-per-rep] [reps]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/rb.hpp"
#include "sim/step_engine.hpp"
#include "util/rng.hpp"

namespace {

constexpr double kBudget = 0.05;  // disabled tracing may cost at most 5%
constexpr int kProcs = 255;

template <bool TraceCapable>
double steps_per_second(std::size_t steps) {
  using Clock = std::chrono::steady_clock;
  const auto opt = ftbar::core::rb_tree_options(kProcs, 2);
  ftbar::sim::StepEngine<ftbar::core::RbProc, TraceCapable> eng(
      ftbar::core::rb_start_state(opt), ftbar::core::make_rb_actions(opt),
      ftbar::util::Rng(2), ftbar::sim::Semantics::kMaxParallel);
  std::size_t fired = 0;
  const auto begin = Clock::now();
  for (std::size_t s = 0; s < steps; ++s) fired += eng.step();
  const auto elapsed = std::chrono::duration<double>(Clock::now() - begin).count();
  if (fired == 0 || elapsed <= 0.0) return 0.0;
  return static_cast<double>(steps) / elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t steps = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  const int reps = argc > 2 ? std::atoi(argv[2]) : 7;

  double untraced = 0.0;
  double disabled = 0.0;
  // Warm-up pass per variant, then interleaved scored repetitions.
  (void)steps_per_second<false>(steps / 4 + 1);
  (void)steps_per_second<true>(steps / 4 + 1);
  for (int r = 0; r < reps; ++r) {
    untraced = std::max(untraced, steps_per_second<false>(steps));
    disabled = std::max(disabled, steps_per_second<true>(steps));
  }

  const double ratio = untraced > 0.0 ? disabled / untraced : 0.0;
  std::printf("rb maxpar N=%d, %zu steps x %d reps (best-of)\n", kProcs, steps,
              reps);
  std::printf("untraced engine        %12.0f steps/s\n", untraced);
  std::printf("trace-capable, no sink %12.0f steps/s  (%.1f%% of untraced)\n",
              disabled, 100.0 * ratio);
  if (untraced <= 0.0 || disabled <= 0.0) {
    std::fprintf(stderr, "error: a variant measured zero throughput\n");
    return 2;
  }
  if (ratio < 1.0 - kBudget) {
    std::fprintf(stderr,
                 "FAIL: disabled tracing costs %.1f%% > %.0f%% budget\n",
                 100.0 * (1.0 - ratio), 100.0 * kBudget);
    return 1;
  }
  std::printf("ok: within the %.0f%% budget\n", 100.0 * kBudget);
  return 0;
}
