// Cross-check (extends Figures 5/6): three independent estimates of the
// Section 6 metrics side by side —
//   analytic    : the closed-form worst case of Section 6.1,
//   wave model  : maximal-parallel wave-granularity simulation (the
//                 SIEFAST-equivalent used for Figures 5/6),
//   async DES   : fully asynchronous discrete-event execution of the real
//                 RB actions, where consecutive phases' waves pipeline.
//
// Expected ordering of mean time per successful phase:
//   async DES <= wave model <= analytic
// (the paper observes the middle inequality; the left one quantifies what
// an asynchronous implementation additionally gains).
//
// Usage: crosscheck_async_des [--csv] [phases-per-point]
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "analysis/model.hpp"
#include "core/des_model.hpp"
#include "core/timed_model.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  bool csv = false;
  std::size_t phases = 4'000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else {
      phases = static_cast<std::size_t>(std::strtoull(argv[i], nullptr, 10));
    }
  }
  constexpr int kProcs = 31;  // binary tree of height 4
  constexpr int kHeight = 4;

  ftbar::util::Table table({"f", "c", "analytic t/phase", "wave t/phase",
                            "des t/phase", "analytic inst", "wave inst",
                            "des inst"});
  table.set_precision(4);
  for (const double f : {0.0, 0.01, 0.05}) {
    for (const double c : {0.0, 0.01, 0.03, 0.05}) {
      const ftbar::analysis::Params ap{kHeight, c, f};

      ftbar::core::TimedRbModel wave({kHeight, c, f}, ftbar::util::Rng(0xcafeULL));
      const auto ws = wave.run_phases(phases);

      ftbar::core::DesParams dp;
      dp.num_procs = kProcs;
      dp.arity = 2;
      dp.c = c;
      dp.f = f;
      dp.seed = 0xdecafULL;
      ftbar::core::DesRbSimulation des(dp);
      (void)des.run(1);  // absorb the startup transient
      const double t1 = des.now();
      const auto dr = des.run(phases);

      table.add_row({f, c, ftbar::analysis::expected_phase_time(ap),
                     ws.elapsed / static_cast<double>(phases),
                     (des.now() - t1) / static_cast<double>(dr.phases),
                     ftbar::analysis::expected_instances(ap),
                     static_cast<double>(ws.instances) / static_cast<double>(phases),
                     static_cast<double>(dr.instances) /
                         static_cast<double>(dr.phases)});
    }
  }

  std::cout << "Cross-check: analytic vs wave-granularity vs asynchronous DES\n"
            << "(31 processes, h = 4, " << phases << " phases/point; expect\n"
            << " des <= wave <= analytic for time per successful phase)\n\n";
  if (csv) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
}
