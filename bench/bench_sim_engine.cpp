// google-benchmark microbenchmarks of the simulation substrate itself:
// guarded-command step rates for the three refinements under both
// semantics, and timed-model phase throughput. These gate how large the
// figure sweeps can be and catch engine regressions.
//
// The RB max-parallel family is measured three ways at N in {15, 63, 255,
// 1023} to expose the cost model of the incremental engine:
//   * BM_RbMaxParallelSteps          — read-set-annotated actions on the
//                                      incremental, copy-free engine;
//   * BM_RbMaxParallelStepsFullScan  — the same actions with read-sets
//                                      stripped, exercising the full-scan
//                                      fallback (copy-free step, but every
//                                      guard re-evaluated every step);
//   * BM_RbMaxParallelStepsSeedRef   — the original full-scan + full-copy
//                                      reference engine, the seed baseline
//                                      the acceptance criterion compares
//                                      against;
//   * BM_RbMaxParallelStepsUntraced  — the StepEngine<P, false>
//                                      instantiation with the tracing hooks
//                                      compiled out entirely. Comparing it
//                                      with BM_RbMaxParallelSteps (trace-
//                                      capable, sink == nullptr) bounds the
//                                      cost of carrying the disabled
//                                      instrumentation; the
//                                      trace_overhead_guard smoke test
//                                      enforces the <= 5% budget.
// Emit machine-readable results with:
//   bench_sim_engine --benchmark_format=json > BENCH_sim_engine.json
// (the `bench-sim-json` CMake target does exactly that).
#include <benchmark/benchmark.h>

#include "core/cb.hpp"
#include "core/mb.hpp"
#include "core/rb.hpp"
#include "core/timed_model.hpp"
#include "sim/reference_step_engine.hpp"
#include "sim/step_engine.hpp"

namespace {

using namespace ftbar;

/// Strips the declared read-sets so the engine takes the full-scan
/// fallback for every action.
template <class P>
std::vector<sim::Action<P>> without_read_sets(std::vector<sim::Action<P>> actions) {
  for (auto& a : actions) a.reads.clear();
  return actions;
}

void BM_CbInterleavingSteps(benchmark::State& state) {
  const core::CbOptions opt{static_cast<int>(state.range(0)), 4};
  sim::StepEngine<core::CbProc> eng(core::cb_start_state(opt),
                                    core::make_cb_actions(opt), util::Rng(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.step());
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_RbMaxParallelSteps(benchmark::State& state) {
  const auto opt = core::rb_tree_options(static_cast<int>(state.range(0)), 2);
  sim::StepEngine<core::RbProc> eng(core::rb_start_state(opt),
                                    core::make_rb_actions(opt), util::Rng(2),
                                    sim::Semantics::kMaxParallel);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.step());
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_RbMaxParallelStepsFullScan(benchmark::State& state) {
  const auto opt = core::rb_tree_options(static_cast<int>(state.range(0)), 2);
  sim::StepEngine<core::RbProc> eng(core::rb_start_state(opt),
                                    without_read_sets(core::make_rb_actions(opt)),
                                    util::Rng(2), sim::Semantics::kMaxParallel);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.step());
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_RbMaxParallelStepsSeedRef(benchmark::State& state) {
  const auto opt = core::rb_tree_options(static_cast<int>(state.range(0)), 2);
  sim::ReferenceStepEngine<core::RbProc> eng(core::rb_start_state(opt),
                                             core::make_rb_actions(opt),
                                             util::Rng(2), /*max_parallel=*/true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.step());
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_RbMaxParallelStepsUntraced(benchmark::State& state) {
  const auto opt = core::rb_tree_options(static_cast<int>(state.range(0)), 2);
  sim::StepEngine<core::RbProc, false> eng(core::rb_start_state(opt),
                                           core::make_rb_actions(opt), util::Rng(2),
                                           sim::Semantics::kMaxParallel);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.step());
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_RbInterleavingSteps(benchmark::State& state) {
  const auto opt = core::rb_tree_options(static_cast<int>(state.range(0)), 2);
  sim::StepEngine<core::RbProc> eng(core::rb_start_state(opt),
                                    core::make_rb_actions(opt), util::Rng(6));
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.step());
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_MbInterleavingSteps(benchmark::State& state) {
  const core::MbOptions opt{static_cast<int>(state.range(0)), 2, 0};
  sim::StepEngine<core::MbProc> eng(core::mb_start_state(opt),
                                    core::make_mb_actions(opt), util::Rng(3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.step());
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_TimedModelPhases(benchmark::State& state) {
  core::TimedRbModel model({5, 0.01, 0.02}, util::Rng(4));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.run_phase().instances);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_RecoveryMeasurement(benchmark::State& state) {
  util::Rng rng(5);
  const int h = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::measure_recovery(h, 0.01, rng));
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

BENCHMARK(BM_CbInterleavingSteps)->Arg(8)->Arg(32);
BENCHMARK(BM_RbMaxParallelSteps)->Arg(15)->Arg(63)->Arg(255)->Arg(1023);
BENCHMARK(BM_RbMaxParallelStepsFullScan)->Arg(15)->Arg(63)->Arg(255)->Arg(1023);
BENCHMARK(BM_RbMaxParallelStepsSeedRef)->Arg(15)->Arg(63)->Arg(255)->Arg(1023);
BENCHMARK(BM_RbMaxParallelStepsUntraced)->Arg(15)->Arg(63)->Arg(255)->Arg(1023);
BENCHMARK(BM_RbInterleavingSteps)->Arg(15)->Arg(63)->Arg(255)->Arg(1023);
BENCHMARK(BM_MbInterleavingSteps)->Arg(8)->Arg(32);
BENCHMARK(BM_TimedModelPhases);
BENCHMARK(BM_RecoveryMeasurement)->Arg(3)->Arg(5)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
