// google-benchmark microbenchmarks of the simulation substrate itself:
// guarded-command step rates for the three refinements under both
// semantics, and timed-model phase throughput. These gate how large the
// figure sweeps can be and catch engine regressions.
#include <benchmark/benchmark.h>

#include "core/cb.hpp"
#include "core/mb.hpp"
#include "core/rb.hpp"
#include "core/timed_model.hpp"
#include "sim/step_engine.hpp"

namespace {

using namespace ftbar;

void BM_CbInterleavingSteps(benchmark::State& state) {
  const core::CbOptions opt{static_cast<int>(state.range(0)), 4};
  sim::StepEngine<core::CbProc> eng(core::cb_start_state(opt),
                                    core::make_cb_actions(opt), util::Rng(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.step());
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_RbMaxParallelSteps(benchmark::State& state) {
  const auto opt = core::rb_tree_options(static_cast<int>(state.range(0)), 2);
  sim::StepEngine<core::RbProc> eng(core::rb_start_state(opt),
                                    core::make_rb_actions(opt), util::Rng(2),
                                    sim::Semantics::kMaxParallel);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.step());
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_MbInterleavingSteps(benchmark::State& state) {
  const core::MbOptions opt{static_cast<int>(state.range(0)), 2, 0};
  sim::StepEngine<core::MbProc> eng(core::mb_start_state(opt),
                                    core::make_mb_actions(opt), util::Rng(3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.step());
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_TimedModelPhases(benchmark::State& state) {
  core::TimedRbModel model({5, 0.01, 0.02}, util::Rng(4));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.run_phase().instances);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_RecoveryMeasurement(benchmark::State& state) {
  util::Rng rng(5);
  const int h = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::measure_recovery(h, 0.01, rng));
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

BENCHMARK(BM_CbInterleavingSteps)->Arg(8)->Arg(32);
BENCHMARK(BM_RbMaxParallelSteps)->Arg(15)->Arg(63);
BENCHMARK(BM_MbInterleavingSteps)->Arg(8)->Arg(32);
BENCHMARK(BM_TimedModelPhases);
BENCHMARK(BM_RecoveryMeasurement)->Arg(3)->Arg(5)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
