// Figure 5 (paper, Section 6.2): SIMULATED effect of the fault frequency
// on the number of instances per successful phase, using the timed RB
// model (the SIEFAST experiment) on a tree of height 5 under maximal
// parallel semantics. The paper observes that the simulated counts match
// the analytical prediction of Figure 3; the rightmost columns report both
// for direct comparison.
//
// Usage: fig5_fault_frequency_sim [--csv] [phases-per-point]
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "analysis/model.hpp"
#include "core/timed_model.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  bool csv = false;
  std::size_t phases = 30'000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else {
      phases = static_cast<std::size_t>(std::strtoull(argv[i], nullptr, 10));
    }
  }
  constexpr int kHeight = 5;

  ftbar::util::Table table({"f", "c", "sim instances", "analytic instances"});
  table.set_precision(4);
  for (int fi = 0; fi <= 10; fi += 2) {
    const double f = fi * 0.01;
    for (const double c : {0.0, 0.01, 0.03, 0.05}) {
      ftbar::core::TimedRbModel model({kHeight, c, f},
                                      ftbar::util::Rng(0x515eedULL + fi));
      const auto stats = model.run_phases(phases);
      const double sim = static_cast<double>(stats.instances) /
                         static_cast<double>(phases);
      const double analytic = ftbar::analysis::expected_instances({kHeight, c, f});
      table.add_row({f, c, sim, analytic});
    }
  }

  std::cout << "Figure 5: simulated instances per successful phase (h = 5, "
            << phases << " phases/point)\n"
            << "(paper: simulation matches the analytical prediction)\n\n";
  if (csv) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
}
