// Figure 5 (paper, Section 6.2): SIMULATED effect of the fault frequency
// on the number of instances per successful phase, using the timed RB
// model (the SIEFAST experiment) on a tree of height 5 under maximal
// parallel semantics. The paper observes that the simulated counts match
// the analytical prediction of Figure 3; the rightmost columns report both
// for direct comparison.
//
// The (f, c) grid points are independent work items executed on the sweep
// runner; each derives its own RNG stream from (seed, item index), and the
// table is reduced in grid order, so output is byte-identical for any
// --threads value.
//
// Usage: fig5_fault_frequency_sim [--csv] [--threads N]
//          [--trace FILE [--trace-format jsonl|chrome]] [phases-per-point]
// --trace records the busiest grid cell (max f, max c) — every instance
// begin/commit/abort at simulated time — without changing any result.
#include <iostream>

#include "analysis/model.hpp"
#include "core/timed_model.hpp"
#include "trace/export.hpp"
#include "trace/recorder.hpp"
#include "util/csv.hpp"
#include "util/sweep.hpp"

namespace {
constexpr std::uint64_t kSeed = 0x515eedULL;
constexpr int kHeight = 5;
constexpr int kFaultPoints[] = {0, 2, 4, 6, 8, 10};
constexpr double kLatencies[] = {0.0, 0.01, 0.03, 0.05};
}  // namespace

int main(int argc, char** argv) {
  const auto cli = ftbar::util::parse_sweep_cli(argc, argv);
  const std::size_t phases = cli.positional_or(0, 30'000);

  struct Point {
    double f, c, sim;
  };
  constexpr std::size_t kGrid = std::size(kFaultPoints) * std::size(kLatencies);

  // With --trace, the last grid cell (highest f, highest c: the most
  // instances per phase) is recorded; the cell's RNG stream is untouched.
  ftbar::trace::TraceRecorder recorder(std::size_t{1} << 20);
  const std::size_t trace_idx = cli.trace.empty() ? kGrid : kGrid - 1;

  ftbar::util::Sweep sweep(cli.threads);
  const auto points =
      sweep.map<Point>(kGrid, [phases, trace_idx, &recorder](std::size_t idx) {
    const double f = kFaultPoints[idx / std::size(kLatencies)] * 0.01;
    const double c = kLatencies[idx % std::size(kLatencies)];
    ftbar::core::TimedRbModel model({kHeight, c, f},
                                    ftbar::util::stream_rng(kSeed, idx));
    if (idx == trace_idx) model.set_sink(&recorder);
    const auto stats = model.run_phases(phases);
    return Point{f, c,
                 static_cast<double>(stats.instances) / static_cast<double>(phases)};
  });

  if (!cli.trace.empty()) {
    if (recorder.dropped() > 0) {
      std::cerr << "warning: trace ring overflowed, " << recorder.dropped()
                << " oldest events lost\n";
    }
    if (!ftbar::trace::write_trace_file(cli.trace, cli.trace_format,
                                        recorder.snapshot(), 1e6)) {
      return 1;
    }
  }

  ftbar::util::Table table({"f", "c", "sim instances", "analytic instances"});
  table.set_precision(4);
  for (const auto& p : points) {
    const double analytic =
        ftbar::analysis::expected_instances({kHeight, p.c, p.f});
    table.add_row({p.f, p.c, p.sim, analytic});
  }

  std::cout << "Figure 5: simulated instances per successful phase (h = 5, "
            << phases << " phases/point)\n"
            << "(paper: simulation matches the analytical prediction)\n\n";
  if (cli.csv) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
}
