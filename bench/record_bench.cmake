# Guarded benchmark recording: refuse to overwrite a BENCH_*.json record
# from a non-optimized build, and stamp the record with its provenance.
#
# The PR 3-era BENCH_check.json carried no provenance: nothing in the file
# said what build type or revision produced it (the context's
# `library_build_type` field describes the system google-benchmark library,
# not this repo's flags), so a record from an unoptimized build would be
# indistinguishable from a real one. This script is what the
# `bench-check-json` / `bench-sim-json` targets run instead of the bare
# binary:
#
#   cmake -DBENCH=<exe> -DOUT=<json> -DBUILD_TYPE=<CMAKE_BUILD_TYPE>
#         -DSOURCE_DIR=<repo root> -P record_bench.cmake
#
#  * BUILD_TYPE must be Release or RelWithDebInfo, unless the caller sets
#    FTBAR_ALLOW_DEBUG_BENCH=1 in the environment (for local smoke runs
#    whose output is not meant to be committed);
#  * the repo's git revision, the build type, and the recording machine's
#    logical core count are injected into the JSON's context block via
#    --benchmark_context, so a record always says where it came from (the
#    core count is stamped as `num_cpus_at_record` to avoid shadowing
#    google-benchmark's native `num_cpus` context field);
#  * callers may pass -DEXTRA_CONTEXT="key=value|key=value" for additional
#    per-target provenance ('|'-separated, because a ';' CMake list would
#    not survive the custom-target COMMAND line).

if(NOT BUILD_TYPE MATCHES "^(Release|RelWithDebInfo)$")
  if(NOT "$ENV{FTBAR_ALLOW_DEBUG_BENCH}" STREQUAL "1")
    message(FATAL_ERROR
        "refusing to record ${OUT} from a '${BUILD_TYPE}' build: benchmark "
        "records must come from Release or RelWithDebInfo (set "
        "FTBAR_ALLOW_DEBUG_BENCH=1 to override for throwaway local runs)")
  endif()
  message(WARNING "recording ${OUT} from a '${BUILD_TYPE}' build "
                  "(FTBAR_ALLOW_DEBUG_BENCH=1)")
endif()

execute_process(COMMAND git -C ${SOURCE_DIR} rev-parse --short HEAD
                OUTPUT_VARIABLE git_sha
                OUTPUT_STRIP_TRAILING_WHITESPACE
                RESULT_VARIABLE git_rc)
if(NOT git_rc EQUAL 0)
  set(git_sha "unknown")
endif()
execute_process(COMMAND git -C ${SOURCE_DIR} status --porcelain
                OUTPUT_VARIABLE git_dirty OUTPUT_STRIP_TRAILING_WHITESPACE)
if(NOT git_dirty STREQUAL "")
  set(git_sha "${git_sha}-dirty")
endif()

# The machine the record is taken on, independent of what the benchmark
# binary itself reports (scaling rows are only meaningful relative to this).
cmake_host_system_information(RESULT num_cpus_at_record
                              QUERY NUMBER_OF_LOGICAL_CORES)

set(extra_context_args "")
if(DEFINED EXTRA_CONTEXT AND NOT EXTRA_CONTEXT STREQUAL "")
  string(REPLACE "|" ";" extra_kvs "${EXTRA_CONTEXT}")
  foreach(kv IN LISTS extra_kvs)
    list(APPEND extra_context_args "--benchmark_context=${kv}")
  endforeach()
endif()

execute_process(COMMAND ${BENCH}
                        --benchmark_format=json
                        --benchmark_out=${OUT}
                        --benchmark_out_format=json
                        --benchmark_context=build_type=${BUILD_TYPE}
                        --benchmark_context=git_sha=${git_sha}
                        --benchmark_context=num_cpus_at_record=${num_cpus_at_record}
                        ${extra_context_args}
                RESULT_VARIABLE bench_rc)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "${BENCH} exited ${bench_rc}; ${OUT} not recorded")
endif()
message(STATUS "recorded ${OUT} (build_type=${BUILD_TYPE}, git=${git_sha})")
