// Figure 7 (paper, Section 6.2): recovery from undetectable faults — the
// REAL program RB on a full binary tree of height h is corrupted to an
// arbitrary state and run under maximal parallel semantics; recovery time
// is the number of steps until a start state is reached, scaled by the
// per-step communication latency c.
//
// Paper reference: recovery grows with c and h but stays small — under the
// 2hc <= 0.5 regime it remains below ~1.25 time units (e.g. ~0.56 at
// 32 processes, c = 0.01).
//
// Usage: fig7_recovery_sim [--csv] [repetitions-per-point]
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "core/timed_model.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  bool csv = false;
  int reps = 20;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else {
      reps = std::atoi(argv[i]);
    }
  }

  ftbar::util::Table table({"c", "h=1", "h=2", "h=3", "h=4", "h=5", "h=6", "h=7"});
  table.set_precision(4);
  for (int ci = 0; ci <= 5; ++ci) {
    const double c = ci * 0.01;
    std::vector<ftbar::util::Cell> row{c};
    for (int h = 1; h <= 7; ++h) {
      ftbar::util::Accumulator acc;
      ftbar::util::Rng rng(0x7ec0de5ULL + static_cast<std::uint64_t>(h * 131 + ci));
      for (int r = 0; r < reps; ++r) {
        acc.add(ftbar::core::measure_recovery(h, c, rng));
      }
      row.push_back(acc.mean());
    }
    table.add_row(std::move(row));
  }

  std::cout << "Figure 7: mean recovery time from an arbitrary state (time "
            << "units; " << reps << " reps/point)\n"
            << "(paper: grows with c and h, < ~1.25 units in the 2hc<=0.5 regime)\n\n";
  if (csv) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
}
