// Figure 7 (paper, Section 6.2): recovery from undetectable faults — the
// REAL program RB on a full binary tree of height h is corrupted to an
// arbitrary state and run under maximal parallel semantics; recovery time
// is the number of steps until a start state is reached, scaled by the
// per-step communication latency c.
//
// Paper reference: recovery grows with c and h but stays small — under the
// 2hc <= 0.5 regime it remains below ~1.25 time units (e.g. ~0.56 at
// 32 processes, c = 0.01).
//
// Each (c, h) cell — `reps` repetitions — is one sweep-runner work item
// with its own RNG stream; the table is reduced in grid order, so output
// is byte-identical for any --threads value.
//
// Usage: fig7_recovery_sim [--csv] [--threads N]
//          [--trace FILE [--trace-format jsonl|chrome]] [repetitions-per-point]
// --trace records the first repetition of the paper-highlighted cell
// (c = 0.01, h = 5) end to end — fault injection, every RB action firing,
// and the SpecMonitor's phase/desync/resync view — then re-checks the
// trace OFFLINE with trace::check_trace (no overlapping instances, phase
// order, and the Lemma 3.4 recovery bound m) and exits nonzero if the
// trace violates the spec. The sweep results are unchanged by tracing.
#include <iostream>
#include <optional>
#include <vector>

#include "core/spec.hpp"
#include "core/timed_model.hpp"
#include "trace/export.hpp"
#include "trace/monitor.hpp"
#include "trace/recorder.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/sweep.hpp"

namespace {
constexpr std::uint64_t kSeed = 0x7ec0de5ULL;
constexpr std::size_t kLatencyPoints = 6;  // c = 0.00 .. 0.05
constexpr int kMaxHeight = 7;
// The traced repetition: c = 0.01, h = 5 (the configuration the paper
// quotes: ~0.56 time units at 32 processes).
constexpr std::size_t kTraceC = 1;
constexpr int kTraceH = 5;
constexpr std::size_t kTraceIdx = kTraceC * kMaxHeight + (kTraceH - 1);
}  // namespace

int main(int argc, char** argv) {
  const auto cli = ftbar::util::parse_sweep_cli(argc, argv);
  const int reps = static_cast<int>(cli.positional_or(0, 20));

  constexpr std::size_t kGrid = kLatencyPoints * kMaxHeight;
  const bool tracing = !cli.trace.empty();
  ftbar::trace::TraceRecorder recorder(std::size_t{1} << 20);
  ftbar::util::Sweep sweep(cli.threads);
  const auto means =
      sweep.map<double>(kGrid, [reps, tracing, &recorder](std::size_t idx) {
    const double c = static_cast<double>(idx / kMaxHeight) * 0.01;
    const int h = static_cast<int>(idx % kMaxHeight) + 1;
    ftbar::util::Accumulator acc;
    ftbar::util::Rng rng = ftbar::util::stream_rng(kSeed, idx);
    for (int r = 0; r < reps; ++r) {
      if (tracing && idx == kTraceIdx && r == 0) {
        // Trace this repetition with a live SpecMonitor; the same random
        // choices are made either way, so the cell's mean is unchanged.
        ftbar::core::SpecMonitor monitor((1 << (h + 1)) - 1, 2);
        monitor.set_sink(&recorder);
        acc.add(ftbar::core::measure_recovery(h, c, rng, &recorder, &monitor));
      } else {
        acc.add(ftbar::core::measure_recovery(h, c, rng));
      }
    }
    return acc.mean();
  });

  std::optional<ftbar::trace::SpecCheckResult> check;
  if (tracing) {
    if (recorder.dropped() > 0) {
      std::cerr << "warning: trace ring overflowed, " << recorder.dropped()
                << " oldest events lost\n";
    }
    const auto events = recorder.snapshot();
    check = ftbar::trace::check_trace(events, (1 << (kTraceH + 1)) - 1, 2);
    if (!ftbar::trace::write_trace_file(cli.trace, cli.trace_format, events,
                                        1000.0)) {
      return 1;
    }
  }

  ftbar::util::Table table({"c", "h=1", "h=2", "h=3", "h=4", "h=5", "h=6", "h=7"});
  table.set_precision(4);
  for (std::size_t ci = 0; ci < kLatencyPoints; ++ci) {
    std::vector<ftbar::util::Cell> row{static_cast<double>(ci) * 0.01};
    for (int h = 1; h <= kMaxHeight; ++h) {
      row.push_back(means[ci * kMaxHeight + static_cast<std::size_t>(h - 1)]);
    }
    table.add_row(std::move(row));
  }

  std::cout << "Figure 7: mean recovery time from an arbitrary state (time "
            << "units; " << reps << " reps/point)\n"
            << "(paper: grows with c and h, < ~1.25 units in the 2hc<=0.5 regime)\n\n";
  if (cli.csv) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  if (check) {
    std::cout << "\ntraced cell (c=" << static_cast<double>(kTraceC) * 0.01
              << ", h=" << kTraceH << "): " << check->phase_events
              << " phase events, " << check->bursts.size()
              << " recovery burst(s)";
    for (const auto& b : check->bursts) {
      std::cout << " [m=" << b.m << ", started " << b.started_phases
                << " <= " << b.m + 1 << ": " << (b.within_bound ? "ok" : "VIOLATED")
                << "]";
    }
    std::cout << "\noffline spec check: " << (check->ok ? "ok" : "VIOLATED")
              << "\n";
    for (const auto& v : check->violations) std::cerr << "violation: " << v << "\n";
    if (!check->ok) return 1;
  }
  return 0;
}
