// Figure 7 (paper, Section 6.2): recovery from undetectable faults — the
// REAL program RB on a full binary tree of height h is corrupted to an
// arbitrary state and run under maximal parallel semantics; recovery time
// is the number of steps until a start state is reached, scaled by the
// per-step communication latency c.
//
// Paper reference: recovery grows with c and h but stays small — under the
// 2hc <= 0.5 regime it remains below ~1.25 time units (e.g. ~0.56 at
// 32 processes, c = 0.01).
//
// Each (c, h) cell — `reps` repetitions — is one sweep-runner work item
// with its own RNG stream; the table is reduced in grid order, so output
// is byte-identical for any --threads value.
//
// Usage: fig7_recovery_sim [--csv] [--threads N] [repetitions-per-point]
#include <iostream>
#include <vector>

#include "core/timed_model.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/sweep.hpp"

namespace {
constexpr std::uint64_t kSeed = 0x7ec0de5ULL;
constexpr std::size_t kLatencyPoints = 6;  // c = 0.00 .. 0.05
constexpr int kMaxHeight = 7;
}  // namespace

int main(int argc, char** argv) {
  const auto cli = ftbar::util::parse_sweep_cli(argc, argv);
  const int reps = static_cast<int>(cli.positional_or(0, 20));

  constexpr std::size_t kGrid = kLatencyPoints * kMaxHeight;
  ftbar::util::Sweep sweep(cli.threads);
  const auto means = sweep.map<double>(kGrid, [reps](std::size_t idx) {
    const double c = static_cast<double>(idx / kMaxHeight) * 0.01;
    const int h = static_cast<int>(idx % kMaxHeight) + 1;
    ftbar::util::Accumulator acc;
    ftbar::util::Rng rng = ftbar::util::stream_rng(kSeed, idx);
    for (int r = 0; r < reps; ++r) {
      acc.add(ftbar::core::measure_recovery(h, c, rng));
    }
    return acc.mean();
  });

  ftbar::util::Table table({"c", "h=1", "h=2", "h=3", "h=4", "h=5", "h=6", "h=7"});
  table.set_precision(4);
  for (std::size_t ci = 0; ci < kLatencyPoints; ++ci) {
    std::vector<ftbar::util::Cell> row{static_cast<double>(ci) * 0.01};
    for (int h = 1; h <= kMaxHeight; ++h) {
      row.push_back(means[ci * kMaxHeight + static_cast<std::size_t>(h - 1)]);
    }
    table.add_row(std::move(row));
  }

  std::cout << "Figure 7: mean recovery time from an arbitrary state (time "
            << "units; " << reps << " reps/point)\n"
            << "(paper: grows with c and h, < ~1.25 units in the 2hc<=0.5 regime)\n\n";
  if (cli.csv) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
}
