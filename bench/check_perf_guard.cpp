// check-perf-guard — regression tripwire for the checker's symmetry
// reduction (ctest label: bench-smoke).
//
// Workload: RB on the ring, N = 5, num_phases = 5, fault-free exploration
// from the start state. The fault-free reachable set is closed under the
// global phase rotation (the system cycles through all phases), and with a
// prime phase count the Z_5 action is free on it, so quotient exploration
// must store exactly |reachable| / 5 states — comfortably within the
// guard's `reduced <= unreduced / (N-1)` bound. Both semantics are checked,
// verdicts must agree between the reduced and unreduced runs, and the whole
// guard must finish under a generous wall-clock ceiling so a reduction that
// silently degrades into full exploration (or an exploration that stops
// terminating) fails fast.
//
// The undetectable-fault workload is deliberately NOT used for the count
// bound: its corruption roots pin recovery transients to a single phase, so
// most orbits are only partially reachable and the quotient barely shrinks
// (see DESIGN.md §9). It still must agree on verdicts, which the smoke
// tests in tools/CMakeLists.txt pin.
//
// This guard owns the symmetry reduction; check_scale_guard.cpp is the
// companion tripwire for parallel scaling (ws@N must beat ws@1 on the
// RB N=8 ph=8 workload on any multi-core machine).
#include <chrono>
#include <cstdio>
#include <vector>

#include "check/checker.hpp"
#include "check/programs.hpp"
#include "core/rb.hpp"

using namespace ftbar;
using core::RbProc;

namespace {

constexpr int kN = 5;
constexpr int kPhases = 5;
constexpr double kWallClockCeilingSec = 60.0;

struct RunResult {
  std::size_t states = 0;
  bool violation = false;
  bool truncated = false;
};

RunResult explore(const check::ProgramBundle<RbProc>& bundle,
                  sim::Semantics semantics, bool symmetry) {
  check::CheckOptions opt;
  opt.semantics = semantics;
  opt.symmetry = symmetry;
  opt.max_states = 1 << 20;
  check::Checker<RbProc> checker(bundle.actions, bundle.procs, opt,
                                 bundle.symmetry);
  const auto res =
      checker.run(bundle.roots(check::FaultClass::kNone), bundle.safe);
  return {res.states_visited, res.violation.has_value(), res.truncated};
}

}  // namespace

int main() {
  const auto t0 = std::chrono::steady_clock::now();
  const auto bundle = check::make_rb_bundle(kN, kPhases);
  int failures = 0;

  for (const auto semantics :
       {sim::Semantics::kInterleaving, sim::Semantics::kMaxParallel}) {
    const char* name =
        semantics == sim::Semantics::kMaxParallel ? "maxpar" : "interleaving";
    const auto full = explore(bundle, semantics, /*symmetry=*/false);
    const auto reduced = explore(bundle, semantics, /*symmetry=*/true);

    const std::size_t bound = full.states / (kN - 1);
    std::printf("%-12s unreduced=%zu reduced=%zu bound=%zu (1/%d)\n", name,
                full.states, reduced.states, bound, kN - 1);
    if (full.truncated || reduced.truncated) {
      std::printf("FAIL(%s): exploration truncated\n", name);
      ++failures;
    }
    if (reduced.states > bound) {
      std::printf("FAIL(%s): symmetry reduction regressed: %zu > %zu\n", name,
                  reduced.states, bound);
      ++failures;
    }
    if (full.violation != reduced.violation) {
      std::printf("FAIL(%s): verdicts differ (unreduced=%d reduced=%d)\n",
                  name, full.violation ? 1 : 0, reduced.violation ? 1 : 0);
      ++failures;
    }
  }

  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("wall clock: %.2fs (ceiling %.0fs)\n", secs, kWallClockCeilingSec);
  if (secs > kWallClockCeilingSec) {
    std::printf("FAIL: guard exceeded the wall-clock ceiling\n");
    ++failures;
  }
  if (failures == 0) std::printf("check-perf-guard: OK\n");
  return failures == 0 ? 0 : 1;
}
