// Figure 4 (paper, Section 6.1): ANALYTICAL overhead of fault-tolerance —
// the ratio of RB's expected time per successful phase to the
// fault-intolerant tree barrier's 1 + 2hc, minus one — versus the
// communication latency, for f in {0, 0.01, 0.05} and 32 processes.
//
// Paper reference points at c = 0.01: 4.5% (f=0), 5.7% (f=0.01),
// 10.8% (f=0.05).
//
// Usage: fig4_overhead_analytical [--csv]
#include <cstring>
#include <iostream>

#include "analysis/model.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::strcmp(argv[1], "--csv") == 0;
  constexpr int kHeight = 5;

  ftbar::util::Table table(
      {"c", "overhead% f=0", "overhead% f=0.01", "overhead% f=0.05"});
  table.set_precision(2);
  for (int ci = 0; ci <= 10; ++ci) {
    const double c = ci * 0.005;
    std::vector<ftbar::util::Cell> row{c};
    for (const double f : {0.0, 0.01, 0.05}) {
      row.push_back(100.0 * ftbar::analysis::overhead({kHeight, c, f}));
    }
    table.add_row(std::move(row));
  }

  std::cout << "Figure 4: analytical overhead of fault-tolerance vs latency\n"
            << "(32 processes, h = 5; paper: 4.5% / 5.7% / 10.8% at c = 0.01)\n\n";
  if (csv) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
}
