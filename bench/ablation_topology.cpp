// Ablation (paper, Section 4.2): the ring needs O(N) time to detect that
// all processes executed their phase and to release the next one, while the
// two-ring and tree refinements need O(h). This bench runs the REAL RB
// program under maximal parallel semantics on each topology and reports
// steps per successful phase (one step = one communication round = c time).
//
// The (N, topology) grid runs on the sweep runner — one work item per
// cell, each with its own RNG stream, reduced in grid order so output is
// byte-identical for any --threads value.
//
// Usage: ablation_topology [--csv] [--threads N] [phases]
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/rb.hpp"
#include "core/spec.hpp"
#include "sim/step_engine.hpp"
#include "util/csv.hpp"
#include "util/sweep.hpp"

namespace {

using namespace ftbar;
using topology::Topology;

constexpr std::uint64_t kSeed = 0xab1a7eULL;

double steps_per_phase(const core::RbOptions& opt, util::Rng rng,
                       std::size_t phases) {
  core::SpecMonitor monitor(opt.topo->size(), opt.num_phases);
  sim::StepEngine<core::RbProc> eng(core::rb_start_state(opt),
                                    core::make_rb_actions(opt, &monitor), rng,
                                    sim::Semantics::kMaxParallel);
  eng.run_until(
      [&](const core::RbState&) { return monitor.successful_phases() >= phases; },
      5'000'000);
  return static_cast<double>(eng.steps_taken()) / static_cast<double>(phases);
}

struct GridCell {
  int n;
  const char* name;
  Topology topo;
};

}  // namespace

int main(int argc, char** argv) {
  const auto cli = util::parse_sweep_cli(argc, argv);
  const std::size_t phases = cli.positional_or(0, 24);

  std::vector<GridCell> grid;
  for (const int n : {4, 8, 16, 32, 64, 128}) {
    grid.push_back({n, "ring (2a)", Topology::ring(n)});
    if (n >= 3) grid.push_back({n, "two-ring (2b)", Topology::two_ring(n)});
    grid.push_back({n, "binary tree (2c)", Topology::kary_tree(n, 2)});
    grid.push_back({n, "4-ary tree (2c)", Topology::kary_tree(n, 4)});
  }

  util::Sweep sweep(cli.threads);
  const auto steps = sweep.map<double>(grid.size(), [&](std::size_t idx) {
    const core::RbOptions opt{
        std::make_shared<const Topology>(grid[idx].topo), 2, 0};
    return steps_per_phase(opt, util::stream_rng(kSeed, idx), phases);
  });

  util::Table table({"N", "topology", "height h", "steps/phase",
                     "barrier time at c=0.01"});
  table.set_precision(2);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    table.add_row({static_cast<long long>(grid[i].n), std::string(grid[i].name),
                   static_cast<long long>(grid[i].topo.height()), steps[i],
                   steps[i] * 0.01});
  }

  std::cout << "Ablation: topology of Figure 2 vs barrier cost\n"
            << "(paper: ring O(N), trees O(h) = O(log N))\n\n";
  if (cli.csv) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
}
