// Ablation (paper, Section 4.2): the ring needs O(N) time to detect that
// all processes executed their phase and to release the next one, while the
// two-ring and tree refinements need O(h). This bench runs the REAL RB
// program under maximal parallel semantics on each topology and reports
// steps per successful phase (one step = one communication round = c time).
//
// Usage: ablation_topology [--csv]
#include <cstring>
#include <iostream>
#include <memory>

#include "core/rb.hpp"
#include "core/spec.hpp"
#include "sim/step_engine.hpp"
#include "util/csv.hpp"

namespace {

using namespace ftbar;

double steps_per_phase(const core::RbOptions& opt, std::uint64_t seed) {
  core::SpecMonitor monitor(opt.topo->size(), opt.num_phases);
  sim::StepEngine<core::RbProc> eng(core::rb_start_state(opt),
                                    core::make_rb_actions(opt, &monitor),
                                    util::Rng(seed), sim::Semantics::kMaxParallel);
  constexpr std::size_t kPhases = 24;
  eng.run_until(
      [&](const core::RbState&) { return monitor.successful_phases() >= kPhases; },
      5'000'000);
  return static_cast<double>(eng.steps_taken()) / kPhases;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::strcmp(argv[1], "--csv") == 0;
  using topology::Topology;

  util::Table table({"N", "topology", "height h", "steps/phase",
                     "barrier time at c=0.01"});
  table.set_precision(2);
  for (const int n : {4, 8, 16, 32, 64, 128}) {
    struct Config {
      const char* name;
      Topology topo;
    };
    std::vector<Config> configs;
    configs.push_back({"ring (2a)", Topology::ring(n)});
    if (n >= 3) configs.push_back({"two-ring (2b)", Topology::two_ring(n)});
    configs.push_back({"binary tree (2c)", Topology::kary_tree(n, 2)});
    configs.push_back({"4-ary tree (2c)", Topology::kary_tree(n, 4)});
    for (auto& config : configs) {
      const int h = config.topo.height();
      const core::RbOptions opt{
          std::make_shared<const Topology>(std::move(config.topo)), 2, 0};
      const double steps = steps_per_phase(opt, 0xab1a7e + static_cast<unsigned>(n));
      table.add_row({static_cast<long long>(n), std::string(config.name),
                     static_cast<long long>(h), steps, steps * 0.01});
    }
  }

  std::cout << "Ablation: topology of Figure 2 vs barrier cost\n"
            << "(paper: ring O(N), trees O(h) = O(log N))\n\n";
  if (csv) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
}
