// google-benchmark microbenchmarks: end-to-end cost of the fault-tolerant
// barrier vs the fault-intolerant baselines on real threads (the Section 6
// "overhead of fault-tolerance" claim, measured on this machine instead of
// the simulator). Each iteration constructs the barrier, spawns the
// workers, runs a fixed number of phases, and joins; items processed =
// phases, so compare items/sec (or the ns_per_barrier counter) across
// barrier types. Shares bench/barrier_harness.hpp with bench_hwbar so the
// baseline rows recorded into BENCH_hwbar.json are measured identically.
#include <benchmark/benchmark.h>

#include <barrier>
#include <chrono>

#include "barrier_harness.hpp"
#include "baseline/central_barrier.hpp"
#include "baseline/dissemination_barrier.hpp"
#include "baseline/tree_barrier.hpp"
#include "core/ft_barrier.hpp"

namespace {

using namespace ftbar;
using benchbar::kPhasesPerIteration;
using benchbar::run_threads;
using benchbar::set_barrier_counters;
using benchbar::skip_if_oversubscribed;

void BM_StdBarrier(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  if (skip_if_oversubscribed(state, n)) return;
  for (auto _ : state) {
    std::barrier bar(n);
    run_threads(n, [&](int) {
      for (int p = 0; p < kPhasesPerIteration; ++p) bar.arrive_and_wait();
    });
  }
  set_barrier_counters(state);
}

void BM_CentralBarrier(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  if (skip_if_oversubscribed(state, n)) return;
  for (auto _ : state) {
    baseline::CentralBarrier bar(n);
    run_threads(n, [&](int) {
      for (int p = 0; p < kPhasesPerIteration; ++p) bar.arrive_and_wait();
    });
  }
  set_barrier_counters(state);
}

void BM_TreeBarrier(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  if (skip_if_oversubscribed(state, n)) return;
  for (auto _ : state) {
    baseline::TreeBarrier bar(n);
    run_threads(n, [&](int tid) {
      for (int p = 0; p < kPhasesPerIteration; ++p) bar.arrive_and_wait(tid);
    });
  }
  set_barrier_counters(state);
}

void BM_DisseminationBarrier(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  if (skip_if_oversubscribed(state, n)) return;
  for (auto _ : state) {
    baseline::DisseminationBarrier bar(n);
    run_threads(n, [&](int tid) {
      for (int p = 0; p < kPhasesPerIteration; ++p) bar.arrive_and_wait(tid);
    });
  }
  set_barrier_counters(state);
}

void BM_FaultTolerantBarrier(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  if (skip_if_oversubscribed(state, n)) return;
  for (auto _ : state) {
    core::FaultTolerantBarrier bar(n);
    run_threads(n, [&](int tid) {
      for (int done = 0; done < kPhasesPerIteration;) {
        if (!bar.arrive_and_wait(tid).repeated) ++done;
      }
      bar.finalize(tid, std::chrono::milliseconds(500));
    });
  }
  set_barrier_counters(state);
}

void BM_FaultTolerantBarrierLossyLinks(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  if (skip_if_oversubscribed(state, n)) return;
  core::BarrierOptions opt;
  opt.link_faults.drop = 0.05;
  for (auto _ : state) {
    core::FaultTolerantBarrier bar(n, opt);
    run_threads(n, [&](int tid) {
      for (int done = 0; done < kPhasesPerIteration;) {
        if (!bar.arrive_and_wait(tid).repeated) ++done;
      }
      bar.finalize(tid, std::chrono::milliseconds(500));
    });
  }
  set_barrier_counters(state);
}

void BM_FaultTolerantBarrierWithProcessFaults(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  if (skip_if_oversubscribed(state, n)) return;
  for (auto _ : state) {
    core::FaultTolerantBarrier bar(n);
    run_threads(n, [&](int tid) {
      int arrives = 0;
      for (int done = 0; done < kPhasesPerIteration;) {
        // Thread 1 loses its state every 8th phase: ~12% fault rate.
        const bool ok = !(tid == 1 && arrives % 8 == 3);
        ++arrives;
        if (!bar.arrive_and_wait(tid, ok).repeated) ++done;
      }
      bar.finalize(tid, std::chrono::milliseconds(500));
    });
  }
  set_barrier_counters(state);
}

}  // namespace

BENCHMARK(BM_StdBarrier)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CentralBarrier)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TreeBarrier)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DisseminationBarrier)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FaultTolerantBarrier)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FaultTolerantBarrierLossyLinks)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FaultTolerantBarrierWithProcessFaults)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
