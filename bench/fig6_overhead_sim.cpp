// Figure 6 (paper, Section 6.2): SIMULATED overhead of fault-tolerance vs
// communication latency. The simulated overhead sits BELOW the analytical
// worst case because instances abandoned early by a fault cost less than a
// full 1 + 3hc circulation — the effect the paper points out when
// comparing Figures 4 and 6.
//
// The (c, f) grid points run as independent sweep-runner work items with
// per-item RNG streams; reduction happens in grid order, so output is
// byte-identical for any --threads value.
//
// Usage: fig6_overhead_sim [--csv] [--threads N]
//          [--trace FILE [--trace-format jsonl|chrome]] [phases-per-point]
// --trace records the busiest grid cell (max c, max f) — every instance
// begin/commit/abort at simulated time — without changing any result.
#include <iostream>

#include "analysis/model.hpp"
#include "core/timed_model.hpp"
#include "trace/export.hpp"
#include "trace/recorder.hpp"
#include "util/csv.hpp"
#include "util/sweep.hpp"

namespace {
constexpr std::uint64_t kSeed = 0xf16ULL;
constexpr int kHeight = 5;
constexpr double kFrequencies[] = {0.0, 0.01, 0.05};
constexpr std::size_t kLatencyPoints = 6;  // c = 0.00 .. 0.05
}  // namespace

int main(int argc, char** argv) {
  const auto cli = ftbar::util::parse_sweep_cli(argc, argv);
  const std::size_t phases = cli.positional_or(0, 30'000);

  struct Point {
    double c, f, overhead;
  };
  constexpr std::size_t kGrid = kLatencyPoints * std::size(kFrequencies);

  // With --trace, the last grid cell (highest c, highest f: the largest
  // overhead) is recorded; the cell's RNG stream is untouched.
  ftbar::trace::TraceRecorder recorder(std::size_t{1} << 20);
  const std::size_t trace_idx = cli.trace.empty() ? kGrid : kGrid - 1;

  ftbar::util::Sweep sweep(cli.threads);
  const auto points =
      sweep.map<Point>(kGrid, [phases, trace_idx, &recorder](std::size_t idx) {
    const double c = static_cast<double>(idx / std::size(kFrequencies)) * 0.01;
    const double f = kFrequencies[idx % std::size(kFrequencies)];
    ftbar::core::TimedRbModel model({kHeight, c, f},
                                    ftbar::util::stream_rng(kSeed, idx));
    if (idx == trace_idx) model.set_sink(&recorder);
    const auto stats = model.run_phases(phases);
    const double mean_time = stats.elapsed / static_cast<double>(phases);
    const double baseline =
        ftbar::core::timed_intolerant_phase_time({kHeight, c, f});
    return Point{c, f, 100.0 * (mean_time / baseline - 1.0)};
  });

  if (!cli.trace.empty()) {
    if (recorder.dropped() > 0) {
      std::cerr << "warning: trace ring overflowed, " << recorder.dropped()
                << " oldest events lost\n";
    }
    if (!ftbar::trace::write_trace_file(cli.trace, cli.trace_format,
                                        recorder.snapshot(), 1e6)) {
      return 1;
    }
  }

  ftbar::util::Table table({"c", "f", "sim overhead%", "analytic overhead%"});
  table.set_precision(2);
  for (const auto& p : points) {
    const double analytic = 100.0 * ftbar::analysis::overhead({kHeight, p.c, p.f});
    table.add_row({p.c, p.f, p.overhead, analytic});
  }

  std::cout << "Figure 6: simulated overhead of fault-tolerance (h = 5, "
            << phases << " phases/point)\n"
            << "(paper: simulated overhead <= analytical, due to early aborts)\n\n";
  if (cli.csv) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
}
