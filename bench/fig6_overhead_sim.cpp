// Figure 6 (paper, Section 6.2): SIMULATED overhead of fault-tolerance vs
// communication latency. The simulated overhead sits BELOW the analytical
// worst case because instances abandoned early by a fault cost less than a
// full 1 + 3hc circulation — the effect the paper points out when
// comparing Figures 4 and 6.
//
// Usage: fig6_overhead_sim [--csv] [phases-per-point]
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "analysis/model.hpp"
#include "core/timed_model.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  bool csv = false;
  std::size_t phases = 30'000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else {
      phases = static_cast<std::size_t>(std::strtoull(argv[i], nullptr, 10));
    }
  }
  constexpr int kHeight = 5;

  ftbar::util::Table table(
      {"c", "f", "sim overhead%", "analytic overhead%"});
  table.set_precision(2);
  for (int ci = 0; ci <= 5; ++ci) {
    const double c = ci * 0.01;
    for (const double f : {0.0, 0.01, 0.05}) {
      ftbar::core::TimedRbModel model({kHeight, c, f},
                                      ftbar::util::Rng(0xf16ULL + ci * 7));
      const auto stats = model.run_phases(phases);
      const double mean_time = stats.elapsed / static_cast<double>(phases);
      const double baseline =
          ftbar::core::timed_intolerant_phase_time({kHeight, c, f});
      const double sim_overhead = 100.0 * (mean_time / baseline - 1.0);
      const double analytic = 100.0 * ftbar::analysis::overhead({kHeight, c, f});
      table.add_row({c, f, sim_overhead, analytic});
    }
  }

  std::cout << "Figure 6: simulated overhead of fault-tolerance (h = 5, "
            << phases << " phases/point)\n"
            << "(paper: simulated overhead <= analytical, due to early aborts)\n\n";
  if (csv) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
}
