// check-scale-guard — regression tripwire for the checker's parallel
// scaling (ctest label: bench-smoke).
//
// Workload: the acceptance family from bench_check.cpp — RB on the ring,
// N = 8, num_phases = 8, undetectable-fault roots, interleaving semantics,
// work-stealing schedule at the default chunk size (~73k states). The guard
// times the same exploration at 1 thread and at min(8, hardware) threads
// (best of two runs each, after a warm-up) and requires
//
//     parallel wall time < single-thread wall time   (speedup > 1.0)
//
// — i.e. threads must actually PAY on a workload big enough to matter, the
// property the chunked scheduler + bulk store insertion exist to deliver.
// Before batching, per-state deque handoff and per-state shard locking made
// ws@8 ~1.5x SLOWER than ws@1 here; a regression back to that shape fails
// this guard on any multi-core machine, long before a human reads a
// benchmark JSON.
//
// The two runs must also agree on the visited set (state count and sorted
// digests) — a scheduler that got faster by dropping states is not faster.
//
// On machines with fewer than 4 hardware threads the comparison is
// meaningless (there is no parallelism to measure), so the guard exits 77
// (ctest SKIP_RETURN_CODE) with a message instead of recording a fake
// verdict. check_perf_guard.cpp is the companion guard for the symmetry
// reduction; this one owns scaling.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "check/checker.hpp"
#include "check/programs.hpp"
#include "core/rb.hpp"

using namespace ftbar;
using core::RbProc;

namespace {

constexpr int kN = 8;
constexpr int kPhases = 8;
constexpr unsigned kMinHardwareThreads = 4;
constexpr int kSkipExitCode = 77;  ///< ctest SKIP_RETURN_CODE
constexpr double kWallClockCeilingSec = 120.0;

struct RunResult {
  std::size_t states = 0;
  bool truncated = false;
  double secs = 0;
  std::vector<std::uint64_t> digests;
};

RunResult explore(const check::ProgramBundle<RbProc>& bundle,
                  std::size_t threads) {
  check::CheckOptions opt;
  opt.semantics = sim::Semantics::kInterleaving;
  opt.schedule = check::Schedule::kWorkStealing;
  opt.threads = threads;
  opt.max_states = 1 << 17;
  check::Checker<RbProc> checker(bundle.actions, bundle.procs, opt,
                                 bundle.symmetry);
  const auto t0 = std::chrono::steady_clock::now();
  const auto res =
      checker.run(bundle.roots(check::FaultClass::kUndetectable), bundle.safe);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return {res.states_visited, res.truncated, secs, checker.sorted_digests()};
}

/// Best-of-`reps` wall time (the minimum is the least noisy estimator for a
/// deterministic workload); the returned result carries that minimum.
RunResult best_of(const check::ProgramBundle<RbProc>& bundle,
                  std::size_t threads, int reps) {
  RunResult best = explore(bundle, threads);
  for (int i = 1; i < reps; ++i) {
    RunResult r = explore(bundle, threads);
    if (r.secs < best.secs) best = std::move(r);
  }
  return best;
}

}  // namespace

int main() {
  const unsigned hc = std::thread::hardware_concurrency();
  if (hc != 0 && hc < kMinHardwareThreads) {
    std::printf(
        "check-scale-guard: SKIP — hardware_concurrency=%u < %u; parallel "
        "speedup is not measurable on this machine\n",
        hc, kMinHardwareThreads);
    return kSkipExitCode;
  }
  const std::size_t par_threads = std::min<std::size_t>(8, hc == 0 ? 8 : hc);

  const auto t0 = std::chrono::steady_clock::now();
  const auto bundle = check::make_rb_bundle(kN, kPhases);
  int failures = 0;

  // Warm-up run: first-touch page faults and the lazy bundle construction
  // would otherwise land in the single-thread measurement.
  (void)explore(bundle, 1);

  const auto serial = best_of(bundle, 1, 2);
  const auto parallel = best_of(bundle, par_threads, 2);
  const double speedup = serial.secs / parallel.secs;

  std::printf(
      "rb_n8_ph8 ws: threads=1 %.3fs  threads=%zu %.3fs  speedup=%.2fx "
      "(states=%zu)\n",
      serial.secs, par_threads, parallel.secs, speedup, serial.states);

  if (serial.truncated || parallel.truncated) {
    std::printf("FAIL: exploration truncated (max_states too small?)\n");
    ++failures;
  }
  if (parallel.states != serial.states ||
      parallel.digests != serial.digests) {
    std::printf(
        "FAIL: visited sets differ across thread counts (1 thread: %zu "
        "states, %zu threads: %zu states)\n",
        serial.states, par_threads, parallel.states);
    ++failures;
  }
  if (speedup <= 1.0) {
    std::printf(
        "FAIL: parallelism does not pay: ws@%zu is not faster than ws@1 "
        "(speedup %.2fx <= 1.0)\n",
        par_threads, speedup);
    ++failures;
  }

  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("wall clock: %.2fs (ceiling %.0fs)\n", secs,
              kWallClockCeilingSec);
  if (secs > kWallClockCeilingSec) {
    std::printf("FAIL: guard exceeded the wall-clock ceiling\n");
    ++failures;
  }
  if (failures == 0) std::printf("check-scale-guard: OK\n");
  return failures == 0 ? 0 : 1;
}
