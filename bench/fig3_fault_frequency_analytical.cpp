// Figure 3 (paper, Section 6.1): ANALYTICAL effect of the fault frequency
// on the number of instances executed per successful phase, for 32
// processes (h = 5) and communication latencies c in [0, 0.05].
//
//   E[instances] = (1 - f)^-(1 + 3hc)
//
// Usage: fig3_fault_frequency_analytical [--csv]
#include <cstring>
#include <iostream>

#include "analysis/model.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::strcmp(argv[1], "--csv") == 0;
  constexpr int kHeight = 5;  // 32 processes

  ftbar::util::Table table({"f", "c=0.00", "c=0.01", "c=0.02", "c=0.03", "c=0.04",
                            "c=0.05"});
  table.set_precision(4);
  for (int fi = 0; fi <= 10; ++fi) {
    const double f = fi * 0.01;
    std::vector<ftbar::util::Cell> row{f};
    for (int ci = 0; ci <= 5; ++ci) {
      const double c = ci * 0.01;
      row.push_back(ftbar::analysis::expected_instances({kHeight, c, f}));
    }
    table.add_row(std::move(row));
  }

  std::cout << "Figure 3: analytical number of instances per successful phase\n"
            << "(32 processes, h = 5; paper reference: <= 1.016 at f=0.01,c=0.01;\n"
            << " ~1.017 at f=0.01,c=0.05)\n\n";
  if (csv) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
}
