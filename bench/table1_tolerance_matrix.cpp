// Table 1 (paper, Section 7): classification of faults and the appropriate
// tolerance to each class, demonstrated EMPIRICALLY — one experiment per
// cell of the matrix:
//
//   immediately correctable              -> trivially masking
//   eventually correctable, detectable   -> masking
//   eventually correctable, undetectable -> stabilizing
//   uncorrectable, detectable            -> fail-safe
//   uncorrectable, undetectable          -> intolerant
#include <iostream>
#include <thread>
#include <vector>

#include "core/cb.hpp"
#include "core/ft_barrier.hpp"
#include "core/rb.hpp"
#include "ext/crash_model.hpp"
#include "ext/fail_safe.hpp"
#include "ext/fault_matrix.hpp"
#include "sim/step_engine.hpp"
#include "util/csv.hpp"

namespace {

using namespace ftbar;

/// Immediately correctable faults (e.g. ECC-corrected corruption): the
/// barrier completes every phase with ZERO repeats — the faults are
/// invisible at the phase level.
std::string demo_trivially_masking() {
  core::BarrierOptions opt;
  opt.link_faults.corrupt = 0.10;  // corrected (here: retransmitted) in-band
  core::FaultTolerantBarrier bar(3, opt);
  std::vector<int> repeats(3, 0);
  std::vector<std::thread> threads;
  for (int tid = 0; tid < 3; ++tid) {
    threads.emplace_back([&, tid] {
      for (int done = 0; done < 6;) {
        const auto t = bar.arrive_and_wait(tid);
        if (t.repeated) {
          ++repeats[static_cast<std::size_t>(tid)];
        } else {
          ++done;
        }
      }
      bar.finalize(tid);
    });
  }
  for (auto& t : threads) t.join();
  const auto corrupted = bar.network_stats().corrupted;
  return "6 phases, " + std::to_string(corrupted) + " corrupted messages, " +
         std::to_string(repeats[0]) + " repeats observed -> faults invisible";
}

/// Eventually correctable detectable faults: phases are re-executed but
/// every barrier still executes correctly (masking).
std::string demo_masking() {
  const auto opt = core::rb_ring_options(5, 4);
  core::SpecMonitor monitor(5, 4);
  sim::StepEngine<core::RbProc> eng(core::rb_start_state(opt),
                                    core::make_rb_actions(opt, &monitor),
                                    util::Rng(1));
  util::Rng fault_rng(2);
  const auto perturb = core::rb_detectable_fault(opt, &monitor);
  std::size_t steps = 0;
  while (monitor.successful_phases() < 16 && steps < 500'000) {
    auto& state = eng.mutable_state();
    for (std::size_t j = 0; j < state.size(); ++j) {
      if (!fault_rng.bernoulli(0.01)) continue;
      int intact = 0;
      for (std::size_t k = 0; k < state.size(); ++k) {
        if (k != j && core::sn_valid(state[k].sn)) ++intact;
      }
      if (intact > 0) perturb(j, state[j], fault_rng);
    }
    eng.step();
    ++steps;
  }
  return std::to_string(monitor.successful_phases()) + " phases ok, " +
         std::to_string(monitor.failed_instances()) + " instances re-executed, " +
         (monitor.safety_ok() ? "0 safety violations -> masked" : "SAFETY VIOLATED");
}

/// Eventually correctable undetectable faults: after arbitrary corruption
/// the program converges back and re-satisfies the specification.
std::string demo_stabilizing() {
  const auto opt = core::rb_tree_options(15, 2);
  core::SpecMonitor monitor(15, 2);
  sim::StepEngine<core::RbProc> eng(core::rb_start_state(opt),
                                    core::make_rb_actions(opt, &monitor),
                                    util::Rng(3), sim::Semantics::kMaxParallel);
  util::Rng fault_rng(4);
  const auto perturb = core::rb_undetectable_fault(opt, &monitor);
  monitor.on_undetectable_fault();
  for (std::size_t j = 0; j < eng.mutable_state().size(); ++j) {
    perturb(j, eng.mutable_state()[j], fault_rng);
  }
  const auto recovered = eng.run_until(
      [](const core::RbState& s) { return core::rb_is_start_state(s); }, 500'000);
  if (!recovered) return "DID NOT RECOVER";
  monitor.resync(eng.state().front().ph);
  eng.run_until(
      [&](const core::RbState&) { return monitor.successful_phases() >= 6; },
      500'000);
  return "recovered in " + std::to_string(*recovered) + " steps, then " +
         std::to_string(monitor.successful_phases()) + " phases ok -> stabilized";
}

/// Uncorrectable detectable faults: fail-safe — nobody ever reports a
/// completion incorrectly; the poisoned group stalls closed.
std::string demo_fail_safe() {
  ext::FailSafeBarrier bar(3);
  std::vector<ext::FailSafeResult> results(3);
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      results[static_cast<std::size_t>(t)] =
          bar.arrive_and_wait(t, /*ok=*/t != 1, std::chrono::milliseconds(300));
    });
  }
  for (auto& t : threads) t.join();
  int completions = 0;
  for (const auto r : results) completions += (r == ext::FailSafeResult::kCompleted);
  return "1 uncorrectable fault, " + std::to_string(completions) +
         " (false) completions reported -> fail-safe";
}

/// Uncorrectable undetectable faults (a permanently Byzantine process): no
/// tolerance is possible — the program never re-establishes a legitimate
/// state.
std::string demo_intolerant() {
  const core::CbOptions opt{3, 2};
  util::Rng byz_rng(5);
  auto scramble = [&byz_rng](std::size_t, core::CbProc& p) {
    p.ph = static_cast<int>(byz_rng.uniform(2));
    p.cp = static_cast<core::Cp>(byz_rng.uniform(4));
  };
  sim::StepEngine<ext::WithAux<core::CbProc>> eng(
      ext::lift_state(core::cb_start_state(opt)),
      ext::add_crash_model(core::make_cb_actions(opt),
                           std::function<void(std::size_t, core::CbProc&)>(scramble)),
      util::Rng(6));
  ext::make_byzantine(eng.mutable_state()[1]);
  std::size_t legit_streak = 0;
  for (int i = 0; i < 100'000; ++i) {
    eng.step();
    std::vector<core::CbProc> inner;
    for (const auto& p : eng.state()) inner.push_back(p.inner);
    legit_streak = core::cb_legitimate(inner, 2) ? legit_streak + 1 : 0;
    if (legit_streak > 5'000) break;  // would mean it somehow stabilized
  }
  return legit_streak > 5'000
             ? "UNEXPECTEDLY STABILIZED"
             : "100000 steps, never stays legitimate -> intolerant (as Table 1 says)";
}

}  // namespace

int main() {
  std::cout << "Table 1: classification of faults and appropriate tolerances\n\n";

  ftbar::util::Table taxonomy({"fault type", "detectability", "correctability",
                               "appropriate tolerance"});
  for (const auto& f : ftbar::ext::standard_fault_catalog()) {
    taxonomy.add_row({std::string(f.name), std::string(to_string(f.detectability)),
                      std::string(to_string(f.correctability)),
                      std::string(to_string(f.tolerance()))});
  }
  taxonomy.print(std::cout);

  std::cout << "\nEmpirical demonstration of each cell:\n\n";
  ftbar::util::Table demos({"cell", "experiment outcome"});
  demos.add_row({std::string("trivially masking"), demo_trivially_masking()});
  demos.add_row({std::string("masking"), demo_masking()});
  demos.add_row({std::string("stabilizing"), demo_stabilizing()});
  demos.add_row({std::string("fail-safe"), demo_fail_safe()});
  demos.add_row({std::string("intolerant"), demo_intolerant()});
  demos.print(std::cout);
  return 0;
}
